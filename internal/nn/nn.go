// Package nn implements a miniature transformer stack — embedding, residual
// attention and FFN sub-blocks (exactly the sub-layer granularity AutoPipe
// plans over, paper Fig. 3), and a language-model head — with explicit,
// context-passing backward passes.
//
// Backward contexts are first-class values rather than module state so that
// a pipeline stage can keep several micro-batches in flight simultaneously,
// which is what the 1F1B schedule requires (package train).
package nn

import (
	"fmt"
	"math"

	"autopipe/internal/tensor"
)

// Param is one learnable tensor with its accumulated gradient.
type Param struct {
	Name string
	W    *tensor.Tensor
	Grad *tensor.Tensor
}

func newParam(name string, w *tensor.Tensor) *Param {
	return &Param{Name: name, W: w, Grad: tensor.New(w.Shape...)}
}

// Ctx carries whatever a module needs to run its backward pass for one
// specific forward invocation.
type Ctx any

// Module is one differentiable block.
type Module interface {
	// Forward computes the output and the backward context for one input.
	Forward(x *tensor.Tensor) (*tensor.Tensor, Ctx)
	// Backward consumes a context and the output gradient, accumulates
	// parameter gradients, and returns the input gradient.
	Backward(ctx Ctx, dy *tensor.Tensor) *tensor.Tensor
	// Params lists the module's learnable tensors.
	Params() []*Param
}

// Linear is y = xW + b over the last axis.
type Linear struct {
	In, Out int
	W, B    *Param
	// NoBias drops the additive bias.
	NoBias bool
}

// NewLinear builds a Linear with N(0, std²) weights.
func NewLinear(name string, in, out int, std float64, rng *tensor.RNG) *Linear {
	l := &Linear{
		In: in, Out: out,
		W: newParam(name+".w", tensor.Randn(rng, std, in, out)),
		B: newParam(name+".b", tensor.New(out)),
	}
	return l
}

type linearCtx struct{ x *tensor.Tensor }

// Forward implements Module.
func (l *Linear) Forward(x *tensor.Tensor) (*tensor.Tensor, Ctx) {
	rows, cols := x.Rows()
	if cols != l.In {
		panic(fmt.Sprintf("nn: linear %s: input width %d, want %d", l.W.Name, cols, l.In))
	}
	x2 := x.Reshape(rows, cols)
	y := tensor.MatMul(x2, l.W.W)
	if !l.NoBias {
		for r := 0; r < rows; r++ {
			row := y.Data[r*l.Out : (r+1)*l.Out]
			for j, b := range l.B.W.Data {
				row[j] += b
			}
		}
	}
	outShape := append(append([]int(nil), x.Shape[:len(x.Shape)-1]...), l.Out)
	return y.Reshape(outShape...), linearCtx{x: x}
}

// Backward implements Module.
func (l *Linear) Backward(ctx Ctx, dy *tensor.Tensor) *tensor.Tensor {
	c := ctx.(linearCtx)
	rows, _ := c.x.Rows()
	x2 := c.x.Reshape(rows, l.In)
	dy2 := dy.Reshape(rows, l.Out)
	l.W.Grad.AddInPlace(tensor.MatMulT1(x2, dy2))
	if !l.NoBias {
		for r := 0; r < rows; r++ {
			row := dy2.Data[r*l.Out : (r+1)*l.Out]
			for j := range l.B.Grad.Data {
				l.B.Grad.Data[j] += row[j]
			}
		}
	}
	dx := tensor.MatMulT2(dy2, l.W.W)
	return dx.Reshape(c.x.Shape...)
}

// Params implements Module.
func (l *Linear) Params() []*Param {
	if l.NoBias {
		return []*Param{l.W}
	}
	return []*Param{l.W, l.B}
}

// LayerNorm normalizes the last axis with learnable gain and bias.
type LayerNorm struct {
	Dim  int
	G, B *Param
	Eps  float64
}

// NewLayerNorm builds a LayerNorm initialized to identity.
func NewLayerNorm(name string, dim int) *LayerNorm {
	g := tensor.New(dim)
	for i := range g.Data {
		g.Data[i] = 1
	}
	return &LayerNorm{Dim: dim, G: newParam(name+".g", g), B: newParam(name+".b", tensor.New(dim)), Eps: 1e-5}
}

type lnCtx struct {
	xhat   *tensor.Tensor
	invStd []float64
}

// Forward implements Module.
func (l *LayerNorm) Forward(x *tensor.Tensor) (*tensor.Tensor, Ctx) {
	rows, cols := x.Rows()
	if cols != l.Dim {
		panic(fmt.Sprintf("nn: layernorm %s: width %d, want %d", l.G.Name, cols, l.Dim))
	}
	y := tensor.New(x.Shape...)
	xhat := tensor.New(x.Shape...)
	invStd := make([]float64, rows)
	for r := 0; r < rows; r++ {
		row := x.Data[r*cols : (r+1)*cols]
		var mean float64
		for _, v := range row {
			mean += v
		}
		mean /= float64(cols)
		var vr float64
		for _, v := range row {
			d := v - mean
			vr += d * d
		}
		vr /= float64(cols)
		is := 1 / math.Sqrt(vr+l.Eps)
		invStd[r] = is
		for j, v := range row {
			h := (v - mean) * is
			xhat.Data[r*cols+j] = h
			y.Data[r*cols+j] = h*l.G.W.Data[j] + l.B.W.Data[j]
		}
	}
	return y, lnCtx{xhat: xhat, invStd: invStd}
}

// Backward implements Module.
func (l *LayerNorm) Backward(ctx Ctx, dy *tensor.Tensor) *tensor.Tensor {
	c := ctx.(lnCtx)
	rows, cols := dy.Rows()
	dx := tensor.New(dy.Shape...)
	n := float64(cols)
	for r := 0; r < rows; r++ {
		dyr := dy.Data[r*cols : (r+1)*cols]
		xh := c.xhat.Data[r*cols : (r+1)*cols]
		var sumDxh, sumDxhXh float64
		for j := 0; j < cols; j++ {
			dxh := dyr[j] * l.G.W.Data[j]
			sumDxh += dxh
			sumDxhXh += dxh * xh[j]
			l.G.Grad.Data[j] += dyr[j] * xh[j]
			l.B.Grad.Data[j] += dyr[j]
		}
		is := c.invStd[r]
		for j := 0; j < cols; j++ {
			dxh := dyr[j] * l.G.W.Data[j]
			dx.Data[r*cols+j] = is / n * (n*dxh - sumDxh - xh[j]*sumDxhXh)
		}
	}
	return dx
}

// Params implements Module.
func (l *LayerNorm) Params() []*Param { return []*Param{l.G, l.B} }

// GELU is the tanh-approximated Gaussian error linear unit used by GPT-2.
type GELU struct{}

type geluCtx struct{ x *tensor.Tensor }

const geluC = 0.7978845608028654 // sqrt(2/pi)

// Forward implements Module.
func (GELU) Forward(x *tensor.Tensor) (*tensor.Tensor, Ctx) {
	y := tensor.New(x.Shape...)
	for i, v := range x.Data {
		y.Data[i] = 0.5 * v * (1 + math.Tanh(geluC*(v+0.044715*v*v*v)))
	}
	return y, geluCtx{x: x}
}

// Backward implements Module.
func (GELU) Backward(ctx Ctx, dy *tensor.Tensor) *tensor.Tensor {
	c := ctx.(geluCtx)
	dx := tensor.New(dy.Shape...)
	for i, v := range c.x.Data {
		u := geluC * (v + 0.044715*v*v*v)
		t := math.Tanh(u)
		du := geluC * (1 + 3*0.044715*v*v)
		dx.Data[i] = dy.Data[i] * (0.5*(1+t) + 0.5*v*(1-t*t)*du)
	}
	return dx
}

// Params implements Module.
func (GELU) Params() []*Param { return nil }
