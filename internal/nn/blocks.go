package nn

import (
	"fmt"
	"math"

	"autopipe/internal/tensor"
)

// ResidualAttentionBlock is the first half of a transformer layer at
// AutoPipe's sub-layer granularity (paper Fig. 3): pre-LayerNorm self-
// attention with a residual connection, y = x + Attn(LN(x)).
type ResidualAttentionBlock struct {
	LN   *LayerNorm
	Attn *CausalSelfAttention
}

// NewResidualAttentionBlock builds the sub-block.
func NewResidualAttentionBlock(name string, hidden, heads int, rng *tensor.RNG) *ResidualAttentionBlock {
	return &ResidualAttentionBlock{
		LN:   NewLayerNorm(name+".ln", hidden),
		Attn: NewCausalSelfAttention(name+".attn", hidden, heads, rng),
	}
}

type resCtx struct{ inner, outer Ctx }

// Forward implements Module.
func (r *ResidualAttentionBlock) Forward(x *tensor.Tensor) (*tensor.Tensor, Ctx) {
	h, lnc := r.LN.Forward(x)
	y, ac := r.Attn.Forward(h)
	return x.Add(y), resCtx{inner: lnc, outer: ac}
}

// Backward implements Module.
func (r *ResidualAttentionBlock) Backward(ctx Ctx, dy *tensor.Tensor) *tensor.Tensor {
	c := ctx.(resCtx)
	dh := r.Attn.Backward(c.outer, dy)
	dx := r.LN.Backward(c.inner, dh)
	dx.AddInPlace(dy) // residual path
	return dx
}

// Params implements Module.
func (r *ResidualAttentionBlock) Params() []*Param {
	return append(r.LN.Params(), r.Attn.Params()...)
}

// ResidualFFNBlock is the second half of a transformer layer:
// y = x + W2(GELU(W1(LN(x)))).
type ResidualFFNBlock struct {
	LN     *LayerNorm
	W1, W2 *Linear
	Act    GELU
}

// NewResidualFFNBlock builds the sub-block with expansion factor mult.
func NewResidualFFNBlock(name string, hidden, mult int, rng *tensor.RNG) *ResidualFFNBlock {
	return &ResidualFFNBlock{
		LN: NewLayerNorm(name+".ln", hidden),
		W1: NewLinear(name+".fc1", hidden, hidden*mult, 0.02, rng),
		W2: NewLinear(name+".fc2", hidden*mult, hidden, 0.02, rng),
	}
}

type ffnCtx struct{ ln, fc1, act, fc2 Ctx }

// Forward implements Module.
func (r *ResidualFFNBlock) Forward(x *tensor.Tensor) (*tensor.Tensor, Ctx) {
	h, lnc := r.LN.Forward(x)
	u, c1 := r.W1.Forward(h)
	g, ca := r.Act.Forward(u)
	y, c2 := r.W2.Forward(g)
	return x.Add(y), ffnCtx{ln: lnc, fc1: c1, act: ca, fc2: c2}
}

// Backward implements Module.
func (r *ResidualFFNBlock) Backward(ctx Ctx, dy *tensor.Tensor) *tensor.Tensor {
	c := ctx.(ffnCtx)
	dg := r.W2.Backward(c.fc2, dy)
	du := r.Act.Backward(c.act, dg)
	dh := r.W1.Backward(c.fc1, du)
	dx := r.LN.Backward(c.ln, dh)
	dx.AddInPlace(dy)
	return dx
}

// Params implements Module.
func (r *ResidualFFNBlock) Params() []*Param {
	ps := r.LN.Params()
	ps = append(ps, r.W1.Params()...)
	ps = append(ps, r.W2.Params()...)
	return ps
}

// Embedding maps token ids [B,S] to hidden states [B,S,H], adding learned
// positional embeddings.
type Embedding struct {
	Vocab, MaxSeq, Hidden int
	Tok, Pos              *Param
}

// NewEmbedding builds the tables.
func NewEmbedding(name string, vocab, maxSeq, hidden int, rng *tensor.RNG) *Embedding {
	return &Embedding{
		Vocab: vocab, MaxSeq: maxSeq, Hidden: hidden,
		Tok: newParam(name+".tok", tensor.Randn(rng, 0.02, vocab, hidden)),
		Pos: newParam(name+".pos", tensor.Randn(rng, 0.01, maxSeq, hidden)),
	}
}

type embCtx struct{ ids *tensor.Tensor }

// Forward implements Module. x holds token ids as float64s in [B,S].
func (e *Embedding) Forward(x *tensor.Tensor) (*tensor.Tensor, Ctx) {
	if len(x.Shape) != 2 {
		panic(fmt.Sprintf("nn: embedding: input shape %v, want [B,S]", x.Shape))
	}
	B, S := x.Shape[0], x.Shape[1]
	if S > e.MaxSeq {
		panic(fmt.Sprintf("nn: embedding: sequence %d exceeds max %d", S, e.MaxSeq))
	}
	y := tensor.New(B, S, e.Hidden)
	for b := 0; b < B; b++ {
		for s := 0; s < S; s++ {
			id := int(x.Data[b*S+s])
			if id < 0 || id >= e.Vocab {
				panic(fmt.Sprintf("nn: embedding: token id %d out of vocab %d", id, e.Vocab))
			}
			dst := y.Data[(b*S+s)*e.Hidden : (b*S+s+1)*e.Hidden]
			tok := e.Tok.W.Data[id*e.Hidden : (id+1)*e.Hidden]
			pos := e.Pos.W.Data[s*e.Hidden : (s+1)*e.Hidden]
			for d := 0; d < e.Hidden; d++ {
				dst[d] = tok[d] + pos[d]
			}
		}
	}
	return y, embCtx{ids: x}
}

// Backward implements Module. The returned gradient is nil: token ids are
// not differentiable.
func (e *Embedding) Backward(ctx Ctx, dy *tensor.Tensor) *tensor.Tensor {
	c := ctx.(embCtx)
	B, S := c.ids.Shape[0], c.ids.Shape[1]
	for b := 0; b < B; b++ {
		for s := 0; s < S; s++ {
			id := int(c.ids.Data[b*S+s])
			src := dy.Data[(b*S+s)*e.Hidden : (b*S+s+1)*e.Hidden]
			tok := e.Tok.Grad.Data[id*e.Hidden : (id+1)*e.Hidden]
			pos := e.Pos.Grad.Data[s*e.Hidden : (s+1)*e.Hidden]
			for d := 0; d < e.Hidden; d++ {
				tok[d] += src[d]
				pos[d] += src[d]
			}
		}
	}
	return nil
}

// Params implements Module.
func (e *Embedding) Params() []*Param { return []*Param{e.Tok, e.Pos} }

// LMHead is the final LayerNorm plus the vocabulary projection. It owns its
// weights (untied) so a pipeline can place it on a different stage than the
// embedding without cross-stage weight synchronization.
type LMHead struct {
	LN   *LayerNorm
	Proj *Linear
}

// NewLMHead builds the head.
func NewLMHead(name string, hidden, vocab int, rng *tensor.RNG) *LMHead {
	p := NewLinear(name+".proj", hidden, vocab, 0.02, rng)
	p.NoBias = true
	return &LMHead{LN: NewLayerNorm(name+".ln", hidden), Proj: p}
}

type headCtx struct{ ln, proj Ctx }

// Forward implements Module: [B,S,H] -> logits [B,S,V].
func (h *LMHead) Forward(x *tensor.Tensor) (*tensor.Tensor, Ctx) {
	u, lc := h.LN.Forward(x)
	y, pc := h.Proj.Forward(u)
	return y, headCtx{ln: lc, proj: pc}
}

// Backward implements Module.
func (h *LMHead) Backward(ctx Ctx, dy *tensor.Tensor) *tensor.Tensor {
	c := ctx.(headCtx)
	du := h.Proj.Backward(c.proj, dy)
	return h.LN.Backward(c.ln, du)
}

// Params implements Module.
func (h *LMHead) Params() []*Param { return append(h.LN.Params(), h.Proj.Params()...) }

// CrossEntropy computes the summed next-token cross-entropy loss of logits
// [B,S,V] against integer targets [B,S] and the logits gradient. Scaling
// (e.g. 1/tokens for a mean) is the caller's business so that micro-batch
// accumulation stays exact.
func CrossEntropy(logits, targets *tensor.Tensor) (loss float64, dLogits *tensor.Tensor) {
	rows, v := logits.Rows()
	if targets.Size() != rows {
		panic(fmt.Sprintf("nn: cross-entropy: %d targets for %d rows", targets.Size(), rows))
	}
	dLogits = tensor.New(logits.Shape...)
	for r := 0; r < rows; r++ {
		row := logits.Data[r*v : (r+1)*v]
		grad := dLogits.Data[r*v : (r+1)*v]
		mx := math.Inf(-1)
		for _, x := range row {
			if x > mx {
				mx = x
			}
		}
		var sum float64
		for j, x := range row {
			e := math.Exp(x - mx)
			grad[j] = e
			sum += e
		}
		target := int(targets.Data[r])
		if target < 0 || target >= v {
			panic(fmt.Sprintf("nn: cross-entropy: target %d out of vocab %d", target, v))
		}
		loss += math.Log(sum) - (row[target] - mx)
		for j := range grad {
			grad[j] /= sum
		}
		grad[target] -= 1
	}
	return loss, dLogits
}

// CollectParams flattens the parameters of a module list.
func CollectParams(mods []Module) []*Param {
	var ps []*Param
	for _, m := range mods {
		ps = append(ps, m.Params()...)
	}
	return ps
}

// ZeroGrads clears accumulated gradients.
func ZeroGrads(params []*Param) {
	for _, p := range params {
		p.Grad.Zero()
	}
}
