package nn

import (
	"fmt"

	"autopipe/internal/tensor"
)

// GPTConfig sizes a miniature GPT for the real-training substrate.
type GPTConfig struct {
	Vocab   int
	MaxSeq  int
	Hidden  int
	Heads   int
	Layers  int
	FFNMult int
	Seed    uint64
}

// TinyGPT returns a config small enough for exhaustive tests.
func TinyGPT() GPTConfig {
	return GPTConfig{Vocab: 17, MaxSeq: 8, Hidden: 16, Heads: 2, Layers: 2, FFNMult: 4, Seed: 7}
}

// BuildGPT constructs the model as a flat module array in AutoPipe's
// planning order — [Embedding, (Attn, FFN) × Layers, LMHead] — so a pipeline
// stage is simply a contiguous slice of the returned list, cut at sub-layer
// granularity exactly like the planner's block array.
func BuildGPT(cfg GPTConfig) []Module {
	if cfg.FFNMult == 0 {
		cfg.FFNMult = 4
	}
	rng := tensor.NewRNG(cfg.Seed)
	mods := []Module{NewEmbedding("emb", cfg.Vocab, cfg.MaxSeq, cfg.Hidden, rng)}
	for l := 0; l < cfg.Layers; l++ {
		mods = append(mods,
			NewResidualAttentionBlock(fmt.Sprintf("l%d.attn", l), cfg.Hidden, cfg.Heads, rng),
			NewResidualFFNBlock(fmt.Sprintf("l%d.ffn", l), cfg.Hidden, cfg.FFNMult, rng),
		)
	}
	mods = append(mods, NewLMHead("head", cfg.Hidden, cfg.Vocab, rng))
	return mods
}

// ForwardAll runs x through a module slice, returning the output and the
// per-module contexts (for BackwardAll).
func ForwardAll(mods []Module, x *tensor.Tensor) (*tensor.Tensor, []Ctx) {
	ctxs := make([]Ctx, len(mods))
	for i, m := range mods {
		x, ctxs[i] = m.Forward(x)
	}
	return x, ctxs
}

// BackwardAll back-propagates dy through a module slice using the contexts
// from ForwardAll, returning the input gradient (nil if the first module is
// an Embedding).
func BackwardAll(mods []Module, ctxs []Ctx, dy *tensor.Tensor) *tensor.Tensor {
	for i := len(mods) - 1; i >= 0; i-- {
		dy = mods[i].Backward(ctxs[i], dy)
	}
	return dy
}
