package nn

import (
	"fmt"
	"math"

	"autopipe/internal/tensor"
)

// CausalSelfAttention is multi-head self-attention over [B,S,H] inputs,
// masked causally by default (GPT); with Bidirectional set every position
// attends to every other (BERT).
type CausalSelfAttention struct {
	Hidden, Heads  int
	Wq, Wk, Wv, Wo *Linear
	// Bidirectional drops the causal mask (BERT-style encoding).
	Bidirectional bool
}

// NewCausalSelfAttention builds the four projections with a causal mask.
func NewCausalSelfAttention(name string, hidden, heads int, rng *tensor.RNG) *CausalSelfAttention {
	if hidden%heads != 0 {
		panic(fmt.Sprintf("nn: attention %s: %d heads do not divide hidden %d", name, heads, hidden))
	}
	std := 0.02
	return &CausalSelfAttention{
		Hidden: hidden, Heads: heads,
		Wq: NewLinear(name+".q", hidden, hidden, std, rng),
		Wk: NewLinear(name+".k", hidden, hidden, std, rng),
		Wv: NewLinear(name+".v", hidden, hidden, std, rng),
		Wo: NewLinear(name+".o", hidden, hidden, std, rng),
	}
}

// NewBidirectionalSelfAttention builds BERT-style unmasked attention.
func NewBidirectionalSelfAttention(name string, hidden, heads int, rng *tensor.RNG) *CausalSelfAttention {
	a := NewCausalSelfAttention(name, hidden, heads, rng)
	a.Bidirectional = true
	return a
}

// limit returns the last attendable position (inclusive) for query i.
func (a *CausalSelfAttention) limit(i, S int) int {
	if a.Bidirectional {
		return S - 1
	}
	return i
}

type attnCtx struct {
	qCtx, kCtx, vCtx, oCtx Ctx
	q, k, v                *tensor.Tensor // [B,S,H]
	probs                  *tensor.Tensor // [B,heads,S,S]
	b, s                   int
}

// Forward implements Module. x must be [B,S,H].
func (a *CausalSelfAttention) Forward(x *tensor.Tensor) (*tensor.Tensor, Ctx) {
	if len(x.Shape) != 3 || x.Shape[2] != a.Hidden {
		panic(fmt.Sprintf("nn: attention: input shape %v, want [B,S,%d]", x.Shape, a.Hidden))
	}
	B, S := x.Shape[0], x.Shape[1]
	nh := a.Heads
	hd := a.Hidden / nh
	scale := 1 / math.Sqrt(float64(hd))

	q, qc := a.Wq.Forward(x)
	k, kc := a.Wk.Forward(x)
	v, vc := a.Wv.Forward(x)

	probs := tensor.New(B, nh, S, S)
	ctxOut := tensor.New(B, S, a.Hidden)
	at := func(t *tensor.Tensor, b, s, h, d int) float64 {
		return t.Data[(b*S+s)*a.Hidden+h*hd+d]
	}
	for b := 0; b < B; b++ {
		for h := 0; h < nh; h++ {
			for i := 0; i < S; i++ {
				// Position i attends to 0..lim (lim = i when causal).
				lim := a.limit(i, S)
				row := probs.Data[((b*nh+h)*S+i)*S : ((b*nh+h)*S+i)*S+S]
				mx := math.Inf(-1)
				for j := 0; j <= lim; j++ {
					var s64 float64
					for d := 0; d < hd; d++ {
						s64 += at(q, b, i, h, d) * at(k, b, j, h, d)
					}
					row[j] = s64 * scale
					if row[j] > mx {
						mx = row[j]
					}
				}
				var sum float64
				for j := 0; j <= lim; j++ {
					row[j] = math.Exp(row[j] - mx)
					sum += row[j]
				}
				for j := 0; j <= lim; j++ {
					row[j] /= sum
				}
				for d := 0; d < hd; d++ {
					var s64 float64
					for j := 0; j <= lim; j++ {
						s64 += row[j] * at(v, b, j, h, d)
					}
					ctxOut.Data[(b*S+i)*a.Hidden+h*hd+d] = s64
				}
			}
		}
	}
	y, oc := a.Wo.Forward(ctxOut)
	return y, attnCtx{qCtx: qc, kCtx: kc, vCtx: vc, oCtx: oc, q: q, k: k, v: v, probs: probs, b: B, s: S}
}

// Backward implements Module.
func (a *CausalSelfAttention) Backward(ctx Ctx, dy *tensor.Tensor) *tensor.Tensor {
	c := ctx.(attnCtx)
	B, S := c.b, c.s
	nh := a.Heads
	hd := a.Hidden / nh
	scale := 1 / math.Sqrt(float64(hd))

	dCtx := a.Wo.Backward(c.oCtx, dy) // [B,S,H]

	dq := tensor.New(B, S, a.Hidden)
	dk := tensor.New(B, S, a.Hidden)
	dv := tensor.New(B, S, a.Hidden)
	at := func(t *tensor.Tensor, b, s, h, d int) float64 {
		return t.Data[(b*S+s)*a.Hidden+h*hd+d]
	}
	addAt := func(t *tensor.Tensor, b, s, h, d int, v float64) {
		t.Data[(b*S+s)*a.Hidden+h*hd+d] += v
	}
	dp := make([]float64, S)
	for b := 0; b < B; b++ {
		for h := 0; h < nh; h++ {
			for i := 0; i < S; i++ {
				lim := a.limit(i, S)
				row := c.probs.Data[((b*nh+h)*S+i)*S : ((b*nh+h)*S+i)*S+S]
				// dprobs[j] = Σ_d dCtx[i,d] * v[j,d]; dv[j,d] += p[j]*dCtx[i,d].
				for j := 0; j <= lim; j++ {
					var s64 float64
					for d := 0; d < hd; d++ {
						g := dCtx.Data[(b*S+i)*a.Hidden+h*hd+d]
						s64 += g * at(c.v, b, j, h, d)
						addAt(dv, b, j, h, d, row[j]*g)
					}
					dp[j] = s64
				}
				// Softmax backward: ds[j] = p[j]*(dp[j] - Σ dp*p).
				var dot float64
				for j := 0; j <= lim; j++ {
					dot += dp[j] * row[j]
				}
				for j := 0; j <= lim; j++ {
					ds := row[j] * (dp[j] - dot) * scale
					for d := 0; d < hd; d++ {
						addAt(dq, b, i, h, d, ds*at(c.k, b, j, h, d))
						addAt(dk, b, j, h, d, ds*at(c.q, b, i, h, d))
					}
				}
			}
		}
	}
	dx := a.Wq.Backward(c.qCtx, dq)
	dx.AddInPlace(a.Wk.Backward(c.kCtx, dk))
	dx.AddInPlace(a.Wv.Backward(c.vCtx, dv))
	return dx
}

// Params implements Module.
func (a *CausalSelfAttention) Params() []*Param {
	var ps []*Param
	for _, l := range []*Linear{a.Wq, a.Wk, a.Wv, a.Wo} {
		ps = append(ps, l.Params()...)
	}
	return ps
}
