// Package model turns a transformer config into the array of sub-layer
// blocks that AutoPipe plans over.
//
// Sub-layer granularity (paper Fig. 3): each transformer layer is split into
// a ResidualAttentionBlock and a ResidualFFNBlock. Both sub-blocks emit the
// same residual-stream tensor, so a pipeline cut between them moves exactly
// as many bytes as a cut between layers — finer planning granularity at zero
// extra communication cost.
package model

import (
	"fmt"
	"strings"

	"autopipe/internal/config"
	"autopipe/internal/cost"
	"autopipe/internal/errdefs"
)

// Block is one schedulable unit of the model with resolved wall times.
type Block struct {
	cost.BlockCost
	// Index is the position of the block in the model's block array.
	Index int
	// Fwd and Bwd are the forward and backward wall times in seconds on the
	// profile the block array was built against. Bwd includes the
	// checkpointing recompute when the geometry enables it.
	Fwd float64
	Bwd float64
}

// Weight returns the block's total compute weight f+b, the quantity
// Algorithm 1 balances across stages.
func (b Block) Weight() float64 { return b.Fwd + b.Bwd }

// LayerFraction returns the block's size in transformer-layer units: 0.5 for
// an attention or FFN sub-block, 0 for embedding/head. Paper Table II reports
// partitions in these units.
func (b Block) LayerFraction() float64 {
	switch b.Kind {
	case cost.KindAttention, cost.KindFFN:
		return 0.5
	case cost.KindLayer:
		return 1
	default:
		return 0
	}
}

// Blocks is a model lowered to a block array on a concrete device profile.
type Blocks struct {
	Model   config.Model
	Geom    cost.Geometry
	Device  config.Device
	Network config.Network
	List    []Block
	// Comm is the paper's single communication constant: the time to move
	// one residual-stream activation between adjacent stages.
	Comm float64
}

// Granularity selects how finely transformer layers are decomposed.
type Granularity int

const (
	// SubLayer splits every transformer layer into attention and FFN blocks
	// (AutoPipe's planning granularity).
	SubLayer Granularity = iota
	// Layer keeps whole transformer layers (the granularity of prior
	// planners; used by the baselines and the granularity ablation).
	Layer
)

// Build lowers m to a block array at the given granularity.
func Build(m config.Model, g cost.Geometry, dev config.Device, net config.Network, gran Granularity) (*Blocks, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if g.MicroBatch <= 0 {
		return nil, fmt.Errorf("%w: model: micro-batch must be positive, got %d", errdefs.ErrBadConfig, g.MicroBatch)
	}
	if g.SeqLen == 0 {
		g.SeqLen = m.SeqLen
	}
	bl := &Blocks{Model: m, Geom: g, Device: dev, Network: net}
	add := func(c cost.BlockCost) {
		bl.List = append(bl.List, Block{
			BlockCost: c,
			Index:     len(bl.List),
			Fwd:       c.FwdTime(dev),
			Bwd:       c.BwdTime(dev, g.Checkpoint),
		})
	}
	add(cost.Embedding(m, g))
	for l := 0; l < m.Layers; l++ {
		attn := cost.Attention(m, g, l)
		ffn := cost.FFN(m, g, l)
		if gran == Layer {
			add(mergeLayer(attn, ffn, l))
			continue
		}
		add(attn)
		add(ffn)
	}
	add(cost.Head(m, g))
	bl.Comm = cost.CommTime(bl.List[0].OutBytes, net)
	return bl, nil
}

// mergeLayer fuses an attention and FFN sub-block into one layer block. The
// merged efficiency is the harmonic combination that preserves total compute
// time: eff = ΣFLOPs / Σ(FLOPs_i / eff_i).
func mergeLayer(a, f cost.BlockCost, layer int) cost.BlockCost {
	fwd := a.FwdFlops + f.FwdFlops
	eff := fwd.Float() / (a.FwdFlops.Float()/a.Efficiency + f.FwdFlops.Float()/f.Efficiency)
	return cost.BlockCost{
		Kind:       cost.KindLayer,
		Layer:      layer,
		Efficiency: eff,
		FwdFlops:   a.FwdFlops + f.FwdFlops,
		BwdFlops:   a.BwdFlops + f.BwdFlops,
		FwdBytes:   a.FwdBytes + f.FwdBytes,
		BwdBytes:   a.BwdBytes + f.BwdBytes,
		Params:     a.Params + f.Params,
		ActStash:   a.ActStash + f.ActStash,
		ActPeak:    maxInt64(a.ActPeak, f.ActPeak),
		OutBytes:   f.OutBytes,
	}
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// Len returns the number of blocks.
func (bl *Blocks) Len() int { return len(bl.List) }

// Granularity reports whether bl was built at layer or sub-layer
// granularity.
func (bl *Blocks) Granularity() Granularity {
	if len(bl.List) == bl.Model.Layers+2 {
		return Layer
	}
	return SubLayer
}

// Rebuild returns a block array for the same model and granularity at a
// different micro-batch size.
func (bl *Blocks) Rebuild(microBatch int) (*Blocks, error) {
	geom := bl.Geom
	geom.MicroBatch = microBatch
	return Build(bl.Model, geom, bl.Device, bl.Network, bl.Granularity())
}

// Weights returns the f+b weight of every block, the input to Algorithm 1.
func (bl *Blocks) Weights() []float64 {
	w := make([]float64, len(bl.List))
	for i, b := range bl.List {
		w[i] = b.Weight()
	}
	return w
}

// TotalParams returns the model's parameter count. With a tied head the
// shared table is counted once, matching paper Table I.
func (bl *Blocks) TotalParams() int64 {
	var p int64
	for _, b := range bl.List {
		p += b.Params
	}
	return p
}

// TotalFwd returns the forward time of one micro-batch through the whole
// model — the paper's estimate of the Warmup phase overhead.
func (bl *Blocks) TotalFwd() float64 {
	var t float64
	for _, b := range bl.List {
		t += b.Fwd
	}
	return t
}

// String renders a compact description of the block array.
func (bl *Blocks) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s: %d blocks, %.1fM params, comm %.3fms",
		bl.Model.Name, len(bl.List), float64(bl.TotalParams())/1e6, bl.Comm*1e3)
	return sb.String()
}
