package model

import (
	"math"
	"testing"

	"autopipe/internal/config"
	"autopipe/internal/cost"
)

func build(t *testing.T, mc config.Model, gran Granularity) *Blocks {
	t.Helper()
	cl := config.DefaultCluster()
	bl, err := Build(mc, cost.Geometry{MicroBatch: 4, Checkpoint: true}, cl.Device, cl.Network, gran)
	if err != nil {
		t.Fatal(err)
	}
	return bl
}

func TestBuildSubLayerStructure(t *testing.T) {
	bl := build(t, config.GPT2_345M(), SubLayer)
	if want := 2 + 2*24; bl.Len() != want {
		t.Fatalf("sub-layer blocks = %d, want %d", bl.Len(), want)
	}
	if bl.List[0].Kind != cost.KindEmbedding {
		t.Error("first block is not the embedding")
	}
	if bl.List[bl.Len()-1].Kind != cost.KindHead {
		t.Error("last block is not the head")
	}
	for i := 1; i < bl.Len()-1; i++ {
		want := cost.KindAttention
		if i%2 == 0 {
			want = cost.KindFFN
		}
		if bl.List[i].Kind != want {
			t.Errorf("block %d is %v, want %v", i, bl.List[i].Kind, want)
		}
		if bl.List[i].Layer != (i-1)/2 {
			t.Errorf("block %d belongs to layer %d, want %d", i, bl.List[i].Layer, (i-1)/2)
		}
	}
	if bl.Granularity() != SubLayer {
		t.Error("granularity misreported")
	}
}

func TestBuildLayerGranularityPreservesTotals(t *testing.T) {
	sub := build(t, config.GPT2_345M(), SubLayer)
	layer := build(t, config.GPT2_345M(), Layer)
	if want := 24 + 2; layer.Len() != want {
		t.Fatalf("layer blocks = %d, want %d", layer.Len(), want)
	}
	if layer.Granularity() != Layer {
		t.Error("granularity misreported")
	}
	if sub.TotalParams() != layer.TotalParams() {
		t.Errorf("params differ across granularity: %d vs %d", sub.TotalParams(), layer.TotalParams())
	}
	// Merging must preserve compute time (harmonic efficiency combination).
	if d := math.Abs(sub.TotalFwd() - layer.TotalFwd()); d > 1e-9*sub.TotalFwd() {
		t.Errorf("forward time differs across granularity by %g", d)
	}
	// And the comm constant is identical (same residual stream).
	if sub.Comm != layer.Comm {
		t.Errorf("comm differs: %g vs %g", sub.Comm, layer.Comm)
	}
}

func TestTotalParamsMatchTable1(t *testing.T) {
	for _, tc := range []struct {
		mc   config.Model
		want float64 // millions, generous band
		tol  float64
	}{
		{config.GPT2_345M(), 345, 0.06},
		{config.GPT2_762M(), 762, 0.06},
		{config.GPT2_1_3B(), 1314, 0.04},
		{config.BERTLarge(), 340, 0.06},
	} {
		bl := build(t, tc.mc, SubLayer)
		got := float64(bl.TotalParams()) / 1e6
		if math.Abs(got-tc.want)/tc.want > tc.tol {
			t.Errorf("%s: %.0fM params, want within %.0f%% of %.0fM", tc.mc.Name, got, tc.tol*100, tc.want)
		}
	}
}

func TestLayerFractionsSumToLayerCount(t *testing.T) {
	for _, gran := range []Granularity{SubLayer, Layer} {
		bl := build(t, config.GPT2_762M(), gran)
		var sum float64
		for _, b := range bl.List {
			sum += b.LayerFraction()
		}
		if sum != float64(bl.Model.Layers) {
			t.Errorf("granularity %v: layer fractions sum to %v, want %d", gran, sum, bl.Model.Layers)
		}
	}
}

func TestRebuildChangesOnlyGeometry(t *testing.T) {
	bl := build(t, config.GPT2_345M(), SubLayer)
	big, err := bl.Rebuild(8)
	if err != nil {
		t.Fatal(err)
	}
	if big.Len() != bl.Len() || big.Granularity() != bl.Granularity() {
		t.Error("rebuild changed structure")
	}
	if big.TotalParams() != bl.TotalParams() {
		t.Error("rebuild changed parameters")
	}
	if big.TotalFwd() <= bl.TotalFwd() {
		t.Error("doubling the micro-batch did not increase compute")
	}
	if big.Comm <= bl.Comm {
		t.Error("doubling the micro-batch did not increase comm payload")
	}
}

func TestBuildValidation(t *testing.T) {
	cl := config.DefaultCluster()
	bad := config.GPT2_345M()
	bad.Layers = 0
	if _, err := Build(bad, cost.Geometry{MicroBatch: 4}, cl.Device, cl.Network, SubLayer); err == nil {
		t.Error("want error for invalid model")
	}
	if _, err := Build(config.GPT2_345M(), cost.Geometry{MicroBatch: 0}, cl.Device, cl.Network, SubLayer); err == nil {
		t.Error("want error for zero micro-batch")
	}
}

func TestWeightsMatchBlockTimes(t *testing.T) {
	bl := build(t, config.BERTLarge(), SubLayer)
	w := bl.Weights()
	for i, b := range bl.List {
		if w[i] != b.Fwd+b.Bwd {
			t.Errorf("weight %d = %g, want f+b = %g", i, w[i], b.Fwd+b.Bwd)
		}
	}
}

func TestStringMentionsModel(t *testing.T) {
	bl := build(t, config.GPT2_345M(), SubLayer)
	if s := bl.String(); len(s) == 0 {
		t.Error("empty description")
	}
}
