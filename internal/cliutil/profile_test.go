package cliutil

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

func TestProfileFlagsDisabledIsNoOp(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	pf := RegisterProfile(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	stop, err := pf.Start()
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
}

func TestProfileFlagsCapture(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pb.gz")
	mem := filepath.Join(dir, "mem.pb.gz")
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	pf := RegisterProfile(fs)
	if err := fs.Parse([]string{"-cpuprofile", cpu, "-memprofile", mem}); err != nil {
		t.Fatal(err)
	}
	stop, err := pf.Start()
	if err != nil {
		t.Fatal(err)
	}
	// A little allocation so the heap profile has something to say.
	sink := make([][]byte, 64)
	for i := range sink {
		sink[i] = make([]byte, 1024)
	}
	_ = sink
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{cpu, mem} {
		fi, err := os.Stat(path)
		if err != nil {
			t.Errorf("profile not written: %v", err)
			continue
		}
		if fi.Size() == 0 {
			t.Errorf("%s is empty", path)
		}
	}
}

func TestProfileFlagsBadPath(t *testing.T) {
	pf := &ProfileFlags{CPUPath: filepath.Join(t.TempDir(), "no", "such", "dir", "cpu.out")}
	if _, err := pf.Start(); err == nil {
		t.Error("Start with unwritable cpu path succeeded")
	}
}
