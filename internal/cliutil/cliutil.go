// Package cliutil provides the flag handling shared by the repository's
// commands: autopipe, pipesim, experiments, autopipebench, and autopiped all
// register their common flags here, so -parallelism, -timeout, the profiling
// flags, and the daemon's -addr/-store mean the same thing everywhere.
// Parsed values resolve into a planning context, engine options, or daemon
// configuration.
package cliutil

import (
	"context"
	"flag"
	"time"

	"autopipe"
	"autopipe/internal/core"
	"autopipe/internal/fault"
)

// PlannerFlags holds the parsed values of the shared planner flags.
type PlannerFlags struct {
	// Parallelism is the planner worker-pool size; 0 means one per CPU. It
	// affects planning speed only — plans are identical at every setting.
	Parallelism int
	// Timeout bounds the whole planning run; 0 means no limit.
	Timeout time.Duration
}

// RegisterPlanner installs the shared planner flags on fs (before
// fs.Parse). Pass flag.CommandLine for the process-wide set.
func RegisterPlanner(fs *flag.FlagSet) *PlannerFlags {
	pf := &PlannerFlags{}
	fs.IntVar(&pf.Parallelism, "parallelism", 0, "planner search workers (0 = one per CPU); any value yields the same plan")
	fs.DurationVar(&pf.Timeout, "timeout", 0, "abort planning after this duration, e.g. 30s (0 = no limit)")
	return pf
}

// Context returns the planning context implied by -timeout. Always call the
// cancel function when planning finishes.
func (pf *PlannerFlags) Context() (context.Context, context.CancelFunc) {
	if pf.Timeout > 0 {
		return context.WithTimeout(context.Background(), pf.Timeout)
	}
	return context.WithCancel(context.Background())
}

// Options returns the engine options implied by the flags, for callers on
// the internal core API (e.g. experiments.Env.Search).
func (pf *PlannerFlags) Options() core.Options {
	return core.Options{Parallelism: pf.Parallelism}
}

// PlannerOptions returns the public functional options implied by the flags,
// for callers constructing an autopipe.Planner.
func (pf *PlannerFlags) PlannerOptions() []autopipe.PlannerOption {
	return []autopipe.PlannerOption{autopipe.WithParallelism(pf.Parallelism)}
}

// ExecFlags holds the parsed values of the shared executor flags.
type ExecFlags struct {
	// Sanitize enables the runtime schedule sanitizer: every executed op and
	// message is checked against the schedule's dependency graph, the link
	// model, and the activation-memory ledger; any violation aborts the run
	// with errdefs.ErrInternal.
	Sanitize bool
}

// RegisterExec installs the shared executor flags on fs (before fs.Parse).
func RegisterExec(fs *flag.FlagSet) *ExecFlags {
	ef := &ExecFlags{}
	fs.BoolVar(&ef.Sanitize, "sanitize", false, "validate every executed op against the schedule dependency graph, link capacity, and memory ledger (fails with an internal-error diagnosis)")
	return ef
}

// ServiceFlags holds the parsed values of the shared daemon flags, used by
// commands that run or address an autopiped instance.
type ServiceFlags struct {
	// Addr is the listen (or target) address for the HTTP API.
	Addr string
	// Store is the job-store directory; empty runs memory-only.
	Store string
	// Rate is the steady-state admission rate in submits/sec; 0 disables the
	// rate limiter.
	Rate float64
	// Burst is the rate-limiter burst size; 0 defaults to max(1, Rate).
	Burst int
	// QueueWait bounds how long an admitted submit may wait for a queue slot
	// before being shed with 503; 0 sheds immediately on a full queue.
	QueueWait time.Duration
	// Chaos is a chaos-plan JSON file wrapped around the HTTP handler; empty
	// means no injection.
	Chaos string
}

// RegisterService installs the shared daemon flags on fs (before fs.Parse).
func RegisterService(fs *flag.FlagSet) *ServiceFlags {
	sf := &ServiceFlags{}
	fs.StringVar(&sf.Addr, "addr", "127.0.0.1:7180", "HTTP listen address for the planning API")
	fs.StringVar(&sf.Store, "store", "", "job-store directory for restart-resumable jobs (empty = memory only)")
	fs.Float64Var(&sf.Rate, "rate", 0, "admission rate limit in submits/sec, rejected with 429 + Retry-After (0 = unlimited)")
	fs.IntVar(&sf.Burst, "burst", 0, "admission burst size above -rate (0 = max(1, rate))")
	fs.DurationVar(&sf.QueueWait, "queue-wait", 0, "how long a submit may wait for a queue slot before 503 + Retry-After (0 = shed immediately)")
	fs.StringVar(&sf.Chaos, "chaos", "", "chaos-plan JSON file injected around the HTTP API (empty = no chaos)")
	return sf
}

// FaultFlags holds the parsed values of the shared fault-injection flags.
type FaultFlags struct {
	// Path is the fault-plan JSON file; empty means no injection.
	Path string
}

// RegisterFaults installs the shared fault-injection flags on fs (before
// fs.Parse).
func RegisterFaults(fs *flag.FlagSet) *FaultFlags {
	ff := &FaultFlags{}
	fs.StringVar(&ff.Path, "faults", "", "fault-plan JSON file to inject during execution (empty = no faults)")
	return ff
}

// Load parses the fault plan named by -faults. It returns (nil, nil) when no
// plan was requested, so callers can pass the result straight through.
func (ff *FaultFlags) Load() (*fault.Plan, error) {
	if ff.Path == "" {
		return nil, nil
	}
	return fault.Load(ff.Path)
}
