package cliutil

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// ProfileFlags holds the parsed values of the shared pprof flags. Every
// command (pipesim, autopipe, experiments, autopipebench) accepts the same
// -cpuprofile/-memprofile pair, so a hotspot found in the benchmark suite can
// be profiled in the exact CLI workload that exhibits it.
type ProfileFlags struct {
	// CPUPath receives a runtime/pprof CPU profile covering everything between
	// Start and the returned stop function; empty disables capture.
	CPUPath string
	// MemPath receives a heap profile taken at stop time (after a forced GC,
	// so it reflects live objects, not garbage); empty disables capture.
	MemPath string
}

// RegisterProfile installs the shared pprof flags on fs (before fs.Parse).
func RegisterProfile(fs *flag.FlagSet) *ProfileFlags {
	pf := &ProfileFlags{}
	fs.StringVar(&pf.CPUPath, "cpuprofile", "", "write a CPU profile to this file (view with `go tool pprof`)")
	fs.StringVar(&pf.MemPath, "memprofile", "", "write a heap profile to this file at exit (view with `go tool pprof`)")
	return pf
}

// Start begins capture per the flags and returns a stop function that
// finalizes both profiles. Call stop exactly once on every path out of the
// workload (defer works); with both flags empty, Start and stop are no-ops.
func (pf *ProfileFlags) Start() (stop func() error, err error) {
	var cpuFile *os.File
	if pf.CPUPath != "" {
		cpuFile, err = os.Create(pf.CPUPath)
		if err != nil {
			return nil, fmt.Errorf("cliutil: create cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("cliutil: start cpu profile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("cliutil: close cpu profile: %w", err)
			}
		}
		if pf.MemPath != "" {
			f, err := os.Create(pf.MemPath)
			if err != nil {
				return fmt.Errorf("cliutil: create heap profile: %w", err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("cliutil: write heap profile: %w", err)
			}
		}
		return nil
	}, nil
}
