package cliutil

import (
	"context"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"autopipe/internal/errdefs"
)

func parsePlanner(t *testing.T, args ...string) *PlannerFlags {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	pf := RegisterPlanner(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatalf("parse %v: %v", args, err)
	}
	return pf
}

func TestPlannerDefaults(t *testing.T) {
	pf := parsePlanner(t)
	if pf.Parallelism != 0 || pf.Timeout != 0 {
		t.Fatalf("defaults = %+v, want zero values", *pf)
	}
	if got := pf.Options(); got.Parallelism != 0 {
		t.Errorf("Options().Parallelism = %d, want 0 (one worker per CPU)", got.Parallelism)
	}
}

func TestPlannerZeroParallelismExplicit(t *testing.T) {
	pf := parsePlanner(t, "-parallelism", "0")
	if got := pf.Options(); got.Parallelism != 0 {
		t.Errorf("explicit -parallelism 0 → Options().Parallelism = %d, want 0", got.Parallelism)
	}
}

func TestPlannerParallelismForwarded(t *testing.T) {
	pf := parsePlanner(t, "-parallelism", "7")
	if got := pf.Options(); got.Parallelism != 7 {
		t.Errorf("Options().Parallelism = %d, want 7", got.Parallelism)
	}
}

func TestContextWithoutTimeout(t *testing.T) {
	pf := parsePlanner(t)
	ctx, cancel := pf.Context()
	if _, ok := ctx.Deadline(); ok {
		t.Error("no -timeout, but context has a deadline")
	}
	cancel()
	if ctx.Err() == nil {
		t.Error("cancel did not cancel the context")
	}
}

func TestContextWithTimeout(t *testing.T) {
	pf := parsePlanner(t, "-timeout", "250ms")
	if pf.Timeout != 250*time.Millisecond {
		t.Fatalf("Timeout = %v, want 250ms", pf.Timeout)
	}
	ctx, cancel := pf.Context()
	defer cancel()
	deadline, ok := ctx.Deadline()
	if !ok {
		t.Fatal("-timeout set, but context has no deadline")
	}
	if until := time.Until(deadline); until > 250*time.Millisecond {
		t.Errorf("deadline %v from now, want at most 250ms", until)
	}
	if err := ctx.Err(); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("unexpected context error %v", err)
	}
}

func parseFaults(t *testing.T, args ...string) *FaultFlags {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	ff := RegisterFaults(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatalf("parse %v: %v", args, err)
	}
	return ff
}

func TestFaultsEmptyMeansNone(t *testing.T) {
	ff := parseFaults(t)
	plan, err := ff.Load()
	if plan != nil || err != nil {
		t.Fatalf("Load() = %v, %v; want nil, nil when -faults is unset", plan, err)
	}
}

func TestFaultsMissingFile(t *testing.T) {
	ff := parseFaults(t, "-faults", filepath.Join(t.TempDir(), "no_such_plan.json"))
	if _, err := ff.Load(); err == nil {
		t.Fatal("Load() succeeded on a nonexistent fault plan")
	}
}

func TestFaultsMalformedFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte(`{"faults": [{"kind": "meteor-strike"}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	ff := parseFaults(t, "-faults", path)
	_, err := ff.Load()
	if err == nil {
		t.Fatal("Load() accepted an unknown fault kind")
	}
	if !errors.Is(err, errdefs.ErrBadConfig) {
		t.Errorf("Load() error %v does not wrap errdefs.ErrBadConfig", err)
	}
}

func TestFaultsValidFile(t *testing.T) {
	ff := parseFaults(t, "-faults", "../../testdata/faults_basic.json")
	plan, err := ff.Load()
	if err != nil {
		t.Fatalf("Load() failed on the checked-in basic plan: %v", err)
	}
	if plan == nil || len(plan.Faults) == 0 {
		t.Fatal("Load() returned an empty plan for the checked-in basic plan")
	}
}
