// Package dapple reimplements the DAPPLE Planner (Fan et al., PPoPP'21) as
// the paper's first comparison baseline.
//
// DAPPLE searches jointly over pipeline depth, a layer-granularity contiguous
// partition, and a per-stage device assignment (replication): a stage's
// replicas cooperate on every micro-batch by sharding its samples. The
// planner scores candidates with an optimistic linear cost model — a stage
// with d replicas is d× faster — plus per-stage gradient all-reduce and
// pipeline fill time, and it does not model per-device memory.
//
// Those two fidelity-faithful simplifications reproduce exactly the
// behaviours the AutoPipe paper reports:
//
//   - the all-reduce term penalizes replicating the parameter-heavy embedding
//     stage, so DAPPLE concentrates replicas (and therefore load) in the
//     second stage — ~17-18 of 24 GPT-2 345M layers with 3 of 4 GPUs, and a
//     heavily over-replicated trailing stage with 16 GPUs;
//   - with 16 GPUs the 15 replicas exceed the micro-batch size, a runtime
//     error (Table III's "-");
//   - with no memory model, its 2-stage plans OOM on GPT-2 1.3B (Table IV);
//   - the exhaustive composition × partition search is the slowest of the
//     three planners (Fig. 12).
package dapple

import (
	"math"
	"time"

	"autopipe/internal/config"
	"autopipe/internal/cost"
	"autopipe/internal/model"
	"autopipe/internal/partition"
	"autopipe/internal/plan"
)

// Options selects the search mode.
type Options struct {
	// Exhaustive disables the early-termination pruning so that every
	// pipeline depth and device composition is scored — the full
	// device-assignment sweep of the released planner, used by the
	// search-time comparison (paper Fig. 12).
	Exhaustive bool
}

// Plan searches for DAPPLE's best pipeline plan for m on the cluster.
// It returns the plan and the (layer-granularity) block array it indexes.
func Plan(mc config.Model, run config.Run, cluster config.Cluster, opts Options) (*plan.Spec, *model.Blocks, error) {
	start := time.Now()
	geom := cost.Geometry{MicroBatch: run.MicroBatch, Checkpoint: run.Checkpoint}
	bl, err := model.Build(mc, geom, cluster.Device, cluster.Network, model.Layer)
	if err != nil {
		return nil, nil, err
	}
	g := cluster.NumGPUs
	n := bl.Len()
	micro := run.MicroBatches(1)

	weights := bl.Weights()
	prefix := make([]float64, n+1)
	for i, w := range weights {
		prefix[i+1] = prefix[i] + w
	}
	paramPrefix := make([]int64, n+1)
	for i, b := range bl.List {
		paramPrefix[i+1] = paramPrefix[i] + b.Params
	}

	best := plan.Spec{Planner: "DAPPLE"}
	bestScore := math.Inf(1)
	evaluated := 0

	maxStages := g
	if maxStages > n {
		maxStages = n
	}
	devs := make([]int, 0, maxStages)
	scoreForDepth := math.Inf(1)
	var recurse func(remaining, stagesLeft int)
	recurse = func(remaining, stagesLeft int) {
		if stagesLeft == 0 {
			if remaining != 0 {
				return
			}
			evaluated++
			part, score, ok := scoreComposition(bl, prefix, paramPrefix, devs, micro, cluster.Network)
			if !ok {
				return
			}
			if score < scoreForDepth {
				scoreForDepth = score
			}
			if score < bestScore {
				bestScore = score
				best.Partition = part
				best.StageDevices = append([]int(nil), devs...)
			}
			return
		}
		// Each stage needs at least one device and at least one block.
		// DAPPLE pins the first stage — which owns the parameter-heavy
		// embedding — to a single worker so the table is never
		// synchronized, and grows replication toward later stages ("larger
		// data parallelism sizes in the second pipeline stage", §IV-D).
		lo, hi := 1, remaining-(stagesLeft-1)
		if len(devs) == 0 && stagesLeft > 1 {
			hi = 1
		}
		for d := lo; d <= hi; d++ {
			devs = append(devs, d)
			recurse(remaining-d, stagesLeft-1)
			devs = devs[:len(devs)-1]
		}
	}
	// DAPPLE always pipelines (depth ≥ 2 — the AutoPipe paper observes it
	// "tends to partition the model into a two-stage pipeline") and deepens
	// the pipeline only while doing so keeps paying off: it stops at the
	// first depth that fails to improve its estimate by at least 2%, the
	// pruning that keeps its exhaustive composition search tractable.
	const improveThreshold = 0.98
	for s := 2; s <= maxStages; s++ {
		prev := bestScore
		scoreForDepth = math.Inf(1)
		recurse(g, s)
		if !opts.Exhaustive && s > 2 && scoreForDepth > prev*improveThreshold {
			break
		}
	}
	if g == 1 {
		// A single device degenerates to serial execution.
		recurse(1, 1)
	}

	best.MicroShard = true
	best.SearchTime = time.Since(start)
	best.Evaluated = evaluated
	return &best, bl, nil
}

// scoreComposition finds the best layer partition for a fixed device
// composition using DAPPLE's weighted min-max dynamic program (stage j's
// effective weight is its load divided by its replica count), then scores it
// with DAPPLE's latency estimate:
//
//	fill + (m-1) * max_j(load_j / d_j) + max_j allreduce_j
func scoreComposition(bl *model.Blocks, prefix []float64, paramPrefix []int64,
	devs []int, micro int, net config.Network) (partition.Partition, float64, bool) {

	n := bl.Len()
	s := len(devs)
	if n < s {
		return partition.Partition{}, 0, false
	}
	const inf = math.MaxFloat64
	// dp[i][j]: minimal max effective stage weight covering the first i
	// blocks with the first j stages.
	dp := make([][]float64, n+1)
	from := make([][]int, n+1)
	for i := range dp {
		dp[i] = make([]float64, s+1)
		from[i] = make([]int, s+1)
		for j := range dp[i] {
			dp[i][j] = inf
			from[i][j] = -1
		}
	}
	dp[0][0] = 0
	for j := 1; j <= s; j++ {
		d := float64(devs[j-1])
		for i := j; i <= n-(s-j); i++ {
			for k := j - 1; k < i; k++ {
				if dp[k][j-1] == inf {
					continue
				}
				cand := (prefix[i] - prefix[k]) / d
				if dp[k][j-1] > cand {
					cand = dp[k][j-1]
				}
				if cand < dp[i][j] {
					dp[i][j] = cand
					from[i][j] = k
				}
			}
		}
	}
	if dp[n][s] == inf {
		return partition.Partition{}, 0, false
	}
	bounds := make([]int, s+1)
	bounds[s] = n
	for j, i := s, n; j > 0; j-- {
		i = from[i][j]
		bounds[j-1] = i
	}
	part, err := partition.New(bounds, n)
	if err != nil {
		return partition.Partition{}, 0, false
	}

	// DAPPLE's latency estimate over the chosen partition. Two modeling
	// choices are faithful to DAPPLE's design context and drive the
	// behaviour the AutoPipe paper reports. First, gradient syncs of
	// different stages are charged sequentially on a shared, congested
	// network at a quarter of the point-to-point bandwidth (DAPPLE targets
	// commodity clusters and treats data parallelism's all-reduce as the
	// enemy) — this is why it avoids pure data parallelism and why it keeps
	// the parameter-heavy embedding stage un-replicated, concentrating
	// replicas and load in the second stage. Second, replication speedup is
	// linear (load/d) even when d approaches the micro-batch size — the
	// optimism that leads it to 15-way replication on 16 GPUs.
	plannerNet := net
	plannerNet.Bandwidth /= 4
	var fill, wave, ar float64
	for j := 0; j < s; j++ {
		load := prefix[bounds[j+1]] - prefix[bounds[j]]
		d := float64(devs[j])
		fill += load / d
		if w := load / d; w > wave {
			wave = w
		}
		params := paramPrefix[bounds[j+1]] - paramPrefix[bounds[j]]
		ar += cost.AllReduceTime(params*4, devs[j], plannerNet)
	}
	fill += 2 * float64(s-1) * bl.Comm
	score := fill + float64(micro-1)*wave + ar
	return part, score, true
}
