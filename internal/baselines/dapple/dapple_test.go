package dapple

import (
	"testing"

	"autopipe/internal/config"
)

func makePlan(t *testing.T, mc config.Model, mbs, gbs, gpus int, opts Options) (*planSpec, layerCounts) {
	t.Helper()
	cl := config.DefaultCluster()
	cl.NumGPUs = gpus
	run := config.Run{MicroBatch: mbs, GlobalBatch: gbs, Checkpoint: true}
	spec, bl, err := Plan(mc, run, cl, opts)
	if err != nil {
		t.Fatal(err)
	}
	return &planSpec{spec.Partition.Stages(), spec.StageDevices, spec.MicroShard, spec.Evaluated},
		layerCounts(spec.Partition.LayerCounts(bl))
}

type planSpec struct {
	depth      int
	devices    []int
	microShard bool
	evaluated  int
}

type layerCounts []float64

func TestDapplePrefersTwoStagePipelines(t *testing.T) {
	// The behaviour the AutoPipe paper reports (§I, §IV-D): DAPPLE tends to
	// produce two-stage pipelines with the embedding stage un-replicated
	// and the bulk of layers concentrated in the replicated second stage.
	spec, layers := makePlan(t, config.GPT2_345M(), 4, 128, 4, Options{})
	if spec.depth != 2 {
		t.Fatalf("depth = %d, want 2", spec.depth)
	}
	if spec.devices[0] != 1 {
		t.Errorf("first stage replicated %d ways, want 1 (embedding pinned)", spec.devices[0])
	}
	if spec.devices[1] != 3 {
		t.Errorf("second stage has %d devices, want 3", spec.devices[1])
	}
	if !spec.microShard {
		t.Error("DAPPLE plans must use micro-batch sharding semantics")
	}
	// ~17-18 of 24 layers land in the replicated stage (paper: 17).
	if layers[1] < 16 || layers[1] > 19 {
		t.Errorf("stage 2 holds %v layers, want ~17", layers[1])
	}
}

func TestDapple16GPUsOverReplicates(t *testing.T) {
	// With 16 GPUs DAPPLE's linear model replicates a trailing stage beyond
	// the micro-batch size — the runtime error of Table III.
	spec, _ := makePlan(t, config.GPT2_345M(), 4, 128, 16, Options{})
	max := 0
	for _, d := range spec.devices {
		if d > max {
			max = d
		}
	}
	if max <= 4 {
		t.Errorf("max replication %d does not exceed micro-batch size 4 (paper: runtime error)", max)
	}
	if spec.devices[0] != 1 {
		t.Errorf("embedding stage replicated %d ways, want 1", spec.devices[0])
	}
}

func TestDappleDevicesSumToCluster(t *testing.T) {
	for _, g := range []int{2, 4, 8, 16} {
		spec, _ := makePlan(t, config.GPT2_345M(), 32, 512, g, Options{})
		sum := 0
		for _, d := range spec.devices {
			sum += d
		}
		if sum != g {
			t.Errorf("%d GPUs: devices %v sum to %d", g, spec.devices, sum)
		}
	}
}

func TestDappleExhaustiveSearchesMore(t *testing.T) {
	pruned, _ := makePlan(t, config.GPT2_345M(), 4, 128, 8, Options{})
	full, _ := makePlan(t, config.GPT2_345M(), 4, 128, 8, Options{Exhaustive: true})
	if full.evaluated <= pruned.evaluated {
		t.Errorf("exhaustive evaluated %d <= pruned %d", full.evaluated, pruned.evaluated)
	}
}

func TestDappleSingleGPU(t *testing.T) {
	spec, _ := makePlan(t, config.GPT2_345M(), 4, 128, 1, Options{})
	if spec.depth != 1 || spec.devices[0] != 1 {
		t.Errorf("single GPU plan: depth %d devices %v", spec.depth, spec.devices)
	}
}
