package megatron

import (
	"math"
	"testing"

	"autopipe/internal/config"
	"autopipe/internal/cost"
	"autopipe/internal/model"
)

func build(t *testing.T, mc config.Model, gran model.Granularity) *model.Blocks {
	t.Helper()
	cl := config.DefaultCluster()
	bl, err := model.Build(mc, cost.Geometry{MicroBatch: 4, Checkpoint: true}, cl.Device, cl.Network, gran)
	if err != nil {
		t.Fatal(err)
	}
	return bl
}

func TestEvenPartitionLayerCounts(t *testing.T) {
	for _, gran := range []model.Granularity{model.SubLayer, model.Layer} {
		bl := build(t, config.GPT2_345M(), gran)
		for _, p := range []int{1, 2, 3, 4, 6, 8, 12, 24} {
			part, err := EvenPartition(bl, p)
			if err != nil {
				t.Fatalf("gran %v p=%d: %v", gran, p, err)
			}
			counts := part.LayerCounts(bl)
			for s, c := range counts {
				if c != float64(24/p) {
					t.Errorf("gran %v p=%d stage %d: %v layers, want %d", gran, p, s, c, 24/p)
				}
			}
			// Embedding with stage 0, head with the last stage.
			if lo, _ := part.Stage(0); lo != 0 {
				t.Errorf("p=%d: stage 0 does not start at the embedding", p)
			}
			if _, hi := part.Stage(p - 1); hi != bl.Len() {
				t.Errorf("p=%d: last stage does not end at the head", p)
			}
		}
	}
}

func TestEvenPartitionRequiresDivisibility(t *testing.T) {
	bl := build(t, config.GPT2_345M(), model.SubLayer)
	for _, p := range []int{5, 7, 9, 16} {
		if _, err := EvenPartition(bl, p); err == nil {
			t.Errorf("p=%d accepted for 24 layers", p)
		}
	}
	if _, err := EvenPartition(bl, 0); err == nil {
		t.Error("p=0 accepted")
	}
	// GPT-2 762M (36 layers) accepts 9 stages — the paper's workaround.
	bl762 := build(t, config.GPT2_762M(), model.SubLayer)
	if _, err := EvenPartition(bl762, 9); err != nil {
		t.Errorf("762M with 9 stages: %v", err)
	}
	if _, err := EvenPartition(bl762, 8); err == nil {
		t.Error("762M with 8 stages accepted (36 layers are not divisible by 8)")
	}
}

func TestInterleavedTimesStructure(t *testing.T) {
	bl := build(t, config.GPT2_345M(), model.SubLayer)
	f, b, part, err := InterleavedTimes(bl, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(f) != 8 || len(b) != 8 || part.Stages() != 8 {
		t.Fatalf("interleaved virt stages = %d, want 8", len(f))
	}
	// Total compute is preserved.
	var totalF float64
	for _, v := range f {
		totalF += v
	}
	if math.Abs(totalF-bl.TotalFwd()) > 1e-9*totalF {
		t.Errorf("virtual forwards sum to %v, model total %v", totalF, bl.TotalFwd())
	}
	// Each virtual stage holds 3 layers.
	for s, c := range part.LayerCounts(bl) {
		if c != 3 {
			t.Errorf("virtual stage %d holds %v layers, want 3", s, c)
		}
	}
}

func TestInterleavedTimesConstraints(t *testing.T) {
	bl := build(t, config.GPT2_345M(), model.SubLayer)
	// 24 layers / 8 stages = 3 per stage: odd, cannot split into 2 chunks —
	// the paper's Fig. 14(b) 'X'.
	if _, _, _, err := InterleavedTimes(bl, 8, 2); err == nil {
		t.Error("8 stages x 2 chunks accepted for 24 layers")
	}
	for _, p := range []int{2, 4, 12} {
		if _, _, _, err := InterleavedTimes(bl, p, 2); err != nil {
			t.Errorf("p=%d x 2 chunks rejected: %v", p, err)
		}
	}
	if _, _, _, err := InterleavedTimes(bl, 5, 2); err == nil {
		t.Error("indivisible depth accepted")
	}
}
