// Package megatron reproduces the Megatron-LM baseline the paper compares
// against: transformer layers divided evenly across pipeline stages (the
// embedding rides with the first stage, the output head with the last), run
// under the 1F1B schedule, optionally with the interleaved schedule that
// places multiple model chunks on each device to shorten startup at the cost
// of extra memory (paper §IV-B, §IV-E-2).
package megatron

import (
	"fmt"

	"autopipe/internal/model"
	"autopipe/internal/partition"
)

// EvenPartition returns Megatron-LM's partition of bl into p stages: L/p
// transformer layers per stage. Megatron requires the pipeline depth to be a
// factor of the layer count (the paper works around this by running GPT-2
// 762M with 9 stages instead of 8).
func EvenPartition(bl *model.Blocks, p int) (partition.Partition, error) {
	L := bl.Model.Layers
	if p <= 0 {
		return partition.Partition{}, fmt.Errorf("megatron: depth must be positive, got %d", p)
	}
	if L%p != 0 {
		return partition.Partition{}, fmt.Errorf("megatron: pipeline depth %d is not a factor of %d layers", p, L)
	}
	perStage := L / p
	blocksPerLayer := layerBlocks(bl)
	bounds := make([]int, p+1)
	for i := 1; i < p; i++ {
		// Stage boundaries fall after whole layers; the embedding block
		// shifts every boundary by one.
		bounds[i] = 1 + blocksPerLayer*perStage*i
	}
	bounds[p] = bl.Len()
	return partition.New(bounds, bl.Len())
}

// InterleavedTimes returns the per-virtual-stage forward/backward times and
// partition for Megatron's interleaved schedule with v chunks per device:
// virtual stage c*p+d holds layers [(c*p+d)*L/(p*v), ...). It fails when the
// per-stage layer count does not divide into v chunks — the constraint that
// makes the interleaved schedule "unable to work properly with some pipeline
// depths" in the paper's Fig. 14(b).
func InterleavedTimes(bl *model.Blocks, p, v int) (f, b []float64, parts partition.Partition, err error) {
	L := bl.Model.Layers
	if L%p != 0 {
		return nil, nil, partition.Partition{}, fmt.Errorf("megatron: depth %d is not a factor of %d layers", p, L)
	}
	if (L/p)%v != 0 {
		return nil, nil, partition.Partition{}, fmt.Errorf("megatron: interleaving needs %d layers per stage divisible into %d chunks", L/p, v)
	}
	virt := p * v
	perVirt := L / virt
	blocksPerLayer := layerBlocks(bl)
	bounds := make([]int, virt+1)
	for i := 1; i < virt; i++ {
		bounds[i] = 1 + blocksPerLayer*perVirt*i
	}
	bounds[virt] = bl.Len()
	part, err := partition.New(bounds, bl.Len())
	if err != nil {
		return nil, nil, partition.Partition{}, err
	}
	f, b = part.StageTimes(bl)
	return f, b, part, nil
}

// layerBlocks returns how many blocks one transformer layer occupies in bl
// (2 at sub-layer granularity, 1 at layer granularity).
func layerBlocks(bl *model.Blocks) int {
	if bl.Len() == bl.Model.Layers+2 {
		return 1
	}
	return 2
}
