// Package piper reimplements the Piper planner (Tarnawski et al.,
// NeurIPS'21) as the paper's second comparison baseline.
//
// Piper runs a two-level dynamic program at layer granularity: the outer
// level splits the model into contiguous stages back-to-front, the inner
// level assigns each stage a device count and a (data-parallel,
// tensor-parallel) configuration, minimizing the steady-state
// time-per-sample bottleneck subject to a conservative per-device memory
// constraint. Piper does not model pipeline bubbles.
//
// Those published design choices reproduce the behaviours the AutoPipe paper
// reports: with low memory demand Piper lands on (or near) complete data
// parallelism; with high memory demand its conservative memory margin and
// bubble-blind objective push it to deeper pipelines than AutoPipe with
// unbalanced, layer-rounded loads (4 stages on 4 GPUs, 5-6 stages on 8),
// and its config enumeration costs roughly an order of magnitude more
// planning time than AutoPipe's heuristic (Fig. 12).
package piper

import (
	"math"
	"time"

	"autopipe/internal/config"
	"autopipe/internal/cost"
	"autopipe/internal/memory"
	"autopipe/internal/model"
	"autopipe/internal/partition"
	"autopipe/internal/plan"
)

// memoryMargin is the fraction of device memory Piper allows itself; the
// head-room guards its coarse activation model against fragmentation.
const memoryMargin = 0.92

// tpOverhead is the compute efficiency loss of tensor-parallel execution.
const tpOverhead = 1.1

type solution struct {
	bottleneck float64
	maxMem     int64
	stages     int
	// firstEnd/firstDevs describe the first stage of the suffix; next chains
	// the rest.
	firstEnd  int
	firstDevs int
	next      *solution
	valid     bool
}

func better(a, b solution) bool {
	if !b.valid {
		return a.valid
	}
	if !a.valid {
		return false
	}
	if a.bottleneck != b.bottleneck {
		return a.bottleneck < b.bottleneck
	}
	// Bubble-blind ties are broken toward lower peak memory, Piper's
	// robustness preference — the mechanism that favors deeper pipelines.
	return a.maxMem < b.maxMem
}

// Options restricts Piper's per-stage configuration space. Piper's full
// algorithm explores tensor parallelism and per-stage recomputation choices;
// the paper's evaluation applies every planner's result to the same
// Megatron-LM backend with activation checkpointing mandated and no tensor
// parallelism, so the reproduction harness disables both (Fig. 12's search
// time measurement keeps the full space).
type Options struct {
	AllowTP          bool
	AllowNoRecompute bool
}

// FullSpace returns Piper's unrestricted configuration space.
func FullSpace() Options { return Options{AllowTP: true, AllowNoRecompute: true} }

// Plan searches for Piper's best plan for mc on the cluster.
func Plan(mc config.Model, run config.Run, cluster config.Cluster, opts Options) (*plan.Spec, *model.Blocks, error) {
	start := time.Now()
	geom := cost.Geometry{MicroBatch: run.MicroBatch, Checkpoint: run.Checkpoint}
	bl, err := model.Build(mc, geom, cluster.Device, cluster.Network, model.Layer)
	if err != nil {
		return nil, nil, err
	}
	g := cluster.NumGPUs
	n := bl.Len()
	micro := run.MicroBatches(1)
	budget := int64(float64(cluster.Device.MemoryBytes) * memoryMargin)

	// Prefix sums over blocks for O(1) stage aggregation.
	fPre := make([]float64, n+1)
	bPre := make([]float64, n+1)
	pPre := make([]int64, n+1)
	sPre := make([]int64, n+1)
	peak := make([][]int64, n+1) // peak[i][j]: max ActPeak in blocks [i,j)
	for i, blk := range bl.List {
		fPre[i+1] = fPre[i] + blk.Fwd
		bPre[i+1] = bPre[i] + blk.Bwd
		pPre[i+1] = pPre[i] + blk.Params
		sPre[i+1] = sPre[i] + blk.ActStash
	}
	for i := 0; i <= n; i++ {
		peak[i] = make([]int64, n+1)
		var mx int64
		for j := i; j < n; j++ {
			if bl.List[j].ActPeak > mx {
				mx = bl.List[j].ActPeak
			}
			peak[i][j+1] = mx
		}
	}

	// best[l][g]: optimal plan for blocks [l, n) on g devices, solved
	// back-to-front so each stage knows how many stages follow it (its
	// 1F1B in-flight micro-batch count).
	best := make([][]solution, n+1)
	for l := range best {
		best[l] = make([]solution, g+1)
	}
	best[n][0] = solution{valid: true}

	evaluated := 0
	for l := n - 1; l >= 0; l-- {
		for devs := 1; devs <= g; devs++ {
			var bst solution
			for end := l + 1; end <= n; end++ {
				for k := 1; k <= devs; k++ {
					rest := best[end][devs-k]
					if !rest.valid && !(end == n && devs-k == 0) {
						continue
					}
					if end < n && devs-k == 0 {
						continue
					}
					if end == n && devs-k != 0 {
						continue // Piper uses every device.
					}
					// Piper's per-stage configuration space: every
					// (data-parallel, tensor-parallel) factorization of the
					// stage's device count, with and without activation
					// recomputation (both dimensions are part of Piper's
					// published search space and a large part of its
					// planning cost, paper Fig. 12).
					maxT := k
					if !opts.AllowTP {
						maxT = 1
					}
					for t := 1; t <= maxT; t++ {
						if k%t != 0 {
							continue
						}
						dp := k / t
						recomputes := []bool{true}
						if opts.AllowNoRecompute {
							recomputes = []bool{true, false}
						}
						for _, recompute := range recomputes {
							evaluated++
							cand, ok := stageCost(bl, l, end, dp, t, recompute, rest, micro, budget,
								fPre, bPre, pPre, sPre, peak, cluster.Network)
							if ok && better(cand, bst) {
								bst = cand
							}
						}
					}
				}
			}
			best[l][devs] = bst
		}
	}

	sol := best[0][g]
	if !sol.valid {
		// No feasible plan within the memory margin; report the deepest
		// possible pipeline so the evaluator surfaces the OOM.
		part, err := partition.Balance(bl.Weights(), minInt(g, n))
		if err != nil {
			return nil, nil, err
		}
		devsOut := make([]int, part.Stages())
		for i := range devsOut {
			devsOut[i] = 1
		}
		return &plan.Spec{
			Planner: "Piper", Partition: part, StageDevices: devsOut,
			RoundRobin: true, SearchTime: time.Since(start), Evaluated: evaluated,
		}, bl, nil
	}

	bounds := []int{0}
	var devsOut []int
	for s := &sol; s != nil && s.firstEnd > 0; s = s.next {
		bounds = append(bounds, s.firstEnd)
		devsOut = append(devsOut, s.firstDevs)
		if s.firstEnd == n {
			break
		}
	}
	part, err := partition.New(bounds, n)
	if err != nil {
		return nil, nil, err
	}
	return &plan.Spec{
		Planner:      "Piper",
		Partition:    part,
		StageDevices: devsOut,
		RoundRobin:   true,
		SearchTime:   time.Since(start),
		Evaluated:    evaluated,
	}, bl, nil
}

// fullActMultiplier approximates how much larger a layer's full activation
// set is than its checkpointed input stash (the intermediates of attention
// and the 4× FFN expansion).
const fullActMultiplier = 8

// arOverlap is the fraction of the gradient all-reduce Piper charges: its
// steady-state throughput model assumes the sync overlaps with backward.
const arOverlap = 0.3

// stageCost evaluates one stage choice (blocks [l,end) on dp×t devices,
// with or without activation recomputation) in front of a suffix solution.
func stageCost(bl *model.Blocks, l, end, dp, t int, recompute bool, rest solution, micro int, budget int64,
	fPre, bPre []float64, pPre, sPre []int64, peak [][]int64, net config.Network) (solution, bool) {

	f := fPre[end] - fPre[l]
	b := bPre[end] - bPre[l]
	params := pPre[end] - pPre[l]
	stash := sPre[end] - sPre[l]
	if !recompute && bl.Geom.Checkpoint {
		// Skipping recomputation removes the extra forward from the
		// backward pass but stores full activations instead of one input
		// per block.
		b -= f
		stash *= fullActMultiplier
	}

	// Tensor parallelism: compute shrinks by t with an efficiency penalty,
	// and every layer all-reduces its activations (two per sub-layer per
	// pass) — ruinous over the cluster interconnect, which is why t=1 wins
	// on this testbed, exactly as in the paper's homogeneous setup.
	compute := (f + b) / float64(t) * tpFactor(t)
	var tpComm float64
	if t > 1 {
		layers := float64(end - l) // block count approximates layer count here
		tpComm = layers * 4 * cost.CommTime(bl.List[0].OutBytes, net) * float64(t-1) / float64(t)
	}

	// Per-replica micro-batches; replicas alternate micro-batches. The
	// gradient all-reduce is mostly overlapped with backward in Piper's
	// steady-state throughput model.
	mLocal := (micro + dp - 1) / dp
	perWave := compute + tpComm + 2*cost.CommTime(bl.List[0].OutBytes, net)
	busy := float64(mLocal)*perWave + arOverlap*cost.AllReduceTime(params*4, dp, net)

	// Memory: 1F1B keeps (stages-after + 1) micro-batches in flight.
	inflight := rest.stages + 1
	if inflight > mLocal {
		inflight = mLocal
	}
	mem := params/int64(t)*memory.BytesPerParam +
		stash/int64(t)*int64(inflight) +
		peak[l][end]/int64(t) +
		memory.FrameworkOverhead
	if mem > budget {
		return solution{}, false
	}

	out := solution{
		bottleneck: math.Max(busy, rest.bottleneck),
		maxMem:     mem,
		stages:     rest.stages + 1,
		firstEnd:   end,
		firstDevs:  dp * t,
		valid:      true,
	}
	if rest.maxMem > out.maxMem {
		out.maxMem = rest.maxMem
	}
	if rest.firstEnd > 0 {
		r := rest
		out.next = &r
	}
	return out, true
}

func tpFactor(t int) float64 {
	if t <= 1 {
		return 1
	}
	return tpOverhead
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
