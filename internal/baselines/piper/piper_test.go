package piper

import (
	"testing"

	"autopipe/internal/config"
	"autopipe/internal/plan"
)

func run(t *testing.T, mc config.Model, mbs, gbs, gpus int, opts Options) *plan.Spec {
	t.Helper()
	cl := config.DefaultCluster()
	cl.NumGPUs = gpus
	spec, _, err := Plan(mc, config.Run{MicroBatch: mbs, GlobalBatch: gbs, Checkpoint: true}, cl, opts)
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

func TestPiperLowMemoryUsesDataParallelism(t *testing.T) {
	// Table III: with low memory demand Piper lands on complete data
	// parallelism (4 GPUs, GPT-2 345M at micro-batch 4).
	spec := run(t, config.GPT2_345M(), 4, 128, 4, Options{})
	if spec.Depth() != 1 || spec.StageDevices[0] != 4 {
		t.Errorf("low memory plan: depth %d devices %v, want 1 stage x 4", spec.Depth(), spec.StageDevices)
	}
}

func TestPiperHighMemoryGoesDeeperThanAutoPipe(t *testing.T) {
	// Table IV: AutoPipe picks 2 stages for GPT-2 345M at micro-batch 32 on
	// 4 GPUs; Piper's conservative memory margin pushes it deeper.
	spec := run(t, config.GPT2_345M(), 32, 512, 4, Options{})
	if spec.Depth() < 3 {
		t.Errorf("high memory plan depth %d, want >= 3 (deeper than AutoPipe's 2)", spec.Depth())
	}
	if !spec.RoundRobin {
		t.Error("Piper plans use round-robin replication semantics")
	}
}

func TestPiperAvoidsOOMOn13B(t *testing.T) {
	// Unlike DAPPLE, Piper models memory and never plans a 2-stage pipeline
	// for GPT-2 1.3B at micro-batch 16 (paper: Piper runs, DAPPLE OOMs).
	for _, g := range []int{4, 8} {
		spec := run(t, config.GPT2_1_3B(), 16, 512, g, Options{})
		if spec.Depth() <= 2 {
			t.Errorf("%d GPUs: depth %d would OOM on 24 GB devices", g, spec.Depth())
		}
	}
}

func TestPiperUsesEveryDevice(t *testing.T) {
	for _, g := range []int{2, 4, 8, 16} {
		spec := run(t, config.GPT2_345M(), 32, 512, g, Options{})
		sum := 0
		for _, d := range spec.StageDevices {
			sum += d
		}
		if sum != g {
			t.Errorf("%d GPUs: devices %v sum to %d", g, spec.StageDevices, sum)
		}
	}
}

func TestPiperFullSpaceSearchesMore(t *testing.T) {
	constrained := run(t, config.GPT2_345M(), 4, 128, 8, Options{})
	full := run(t, config.GPT2_345M(), 4, 128, 8, FullSpace())
	if full.Evaluated <= constrained.Evaluated {
		t.Errorf("full space evaluated %d <= constrained %d", full.Evaluated, constrained.Evaluated)
	}
}

func TestPiperLayerGranularity(t *testing.T) {
	// Piper plans whole layers: no stage boundary may sit inside a layer.
	cl := config.DefaultCluster()
	cl.NumGPUs = 4
	spec, bl, err := Plan(config.GPT2_345M(), config.Run{MicroBatch: 32, GlobalBatch: 512, Checkpoint: true}, cl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range spec.Partition.LayerCounts(bl) {
		if c != float64(int(c)) {
			t.Errorf("fractional layer count %v in a layer-granularity plan", c)
		}
	}
}
