package core

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"testing"

	"autopipe/internal/config"
	"autopipe/internal/cost"
	"autopipe/internal/errdefs"
	"autopipe/internal/memory"
	"autopipe/internal/partition"
)

// TestEngineDeterministicAcrossParallelism is the engine's core contract:
// the plan must be byte-identical at every worker-pool size, for every zoo
// model. Wall-clock fields are zeroed before comparing — they are the only
// fields allowed to differ.
func TestEngineDeterministicAcrossParallelism(t *testing.T) {
	widths := []int{1, 4, runtime.GOMAXPROCS(0)}
	cluster := config.DefaultCluster()
	run := config.Run{MicroBatch: 4, GlobalBatch: 512, Checkpoint: true}
	for _, mc := range config.Zoo() {
		var specs []plan0
		for _, w := range widths {
			spec, _, err := PlanClusterOpts(context.Background(), mc, run, cluster, Options{Parallelism: w})
			if err != nil {
				t.Fatalf("%s parallelism %d: %v", mc.Name, w, err)
			}
			spec.SearchTime = 0
			specs = append(specs, plan0{w, spec})
		}
		for _, s := range specs[1:] {
			if !reflect.DeepEqual(specs[0].spec, s.spec) {
				t.Errorf("%s: plan differs between parallelism %d and %d:\n%+v\nvs\n%+v",
					mc.Name, specs[0].width, s.width, specs[0].spec, s.spec)
			}
		}
	}
}

type plan0 struct {
	width int
	spec  interface{}
}

// TestPlanDepthOptsDeterministicTelemetry pins down that not only the best
// partition but the entire search trajectory (candidate counts, convergence
// curve) is parallelism-independent.
func TestPlanDepthOptsDeterministicTelemetry(t *testing.T) {
	bl := buildSub(t, config.GPT2_762M(), 4)
	var base *PlanResult
	for _, w := range []int{1, 3, 8} {
		res, err := PlanDepthOpts(context.Background(), bl, 4, 16, Options{Parallelism: w})
		if err != nil {
			t.Fatalf("parallelism %d: %v", w, err)
		}
		if base == nil {
			base = res
			continue
		}
		if !res.Best.Partition.Equal(base.Best.Partition) {
			t.Errorf("parallelism %d: best partition %v, want %v", w, res.Best.Partition, base.Best.Partition)
		}
		if res.Telemetry.Candidates != base.Telemetry.Candidates ||
			res.Telemetry.Accepted != base.Telemetry.Accepted {
			t.Errorf("parallelism %d: telemetry (%d, %d), want (%d, %d)", w,
				res.Telemetry.Candidates, res.Telemetry.Accepted,
				base.Telemetry.Candidates, base.Telemetry.Accepted)
		}
		if !reflect.DeepEqual(res.Telemetry.Convergence, base.Telemetry.Convergence) {
			t.Errorf("parallelism %d: convergence curve differs", w)
		}
	}
}

func TestEngineCancellation(t *testing.T) {
	bl := buildSub(t, config.GPT2_345M(), 4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := PlanDepthOpts(ctx, bl, 4, 8, Options{}); !errors.Is(err, context.Canceled) {
		t.Errorf("PlanDepthOpts on cancelled ctx: err = %v, want context.Canceled", err)
	}
	run := config.Run{MicroBatch: 4, GlobalBatch: 128, Checkpoint: true}
	if _, _, err := PlanClusterOpts(ctx, config.GPT2_345M(), run, config.DefaultCluster(), Options{}); !errors.Is(err, context.Canceled) {
		t.Errorf("PlanClusterOpts on cancelled ctx: err = %v, want context.Canceled", err)
	}
}

func TestEngineBadConfig(t *testing.T) {
	bl := buildSub(t, config.GPT2_345M(), 4)
	if _, err := PlanDepthOpts(context.Background(), bl, 0, 8, Options{}); !errors.Is(err, errdefs.ErrBadConfig) {
		t.Errorf("depth 0: err = %v, want ErrBadConfig", err)
	}
	if _, err := PlanDepthOpts(context.Background(), bl, 4, 0, Options{}); !errors.Is(err, errdefs.ErrBadConfig) {
		t.Errorf("micro 0: err = %v, want ErrBadConfig", err)
	}
	run := config.Run{MicroBatch: 3, GlobalBatch: 128, Checkpoint: true}
	if _, _, err := PlanClusterOpts(context.Background(), config.GPT2_345M(), run, config.DefaultCluster(), Options{}); !errors.Is(err, errdefs.ErrBadConfig) {
		t.Errorf("indivisible global batch: err = %v, want ErrBadConfig", err)
	}
}

// TestEngineBudget checks that a search budget truncates the search
// deterministically while still returning a usable plan.
func TestEngineBudget(t *testing.T) {
	bl := buildSub(t, config.GPT2_762M(), 4)
	full, err := PlanDepthOpts(context.Background(), bl, 4, 16, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if full.Evaluated < 5 {
		t.Skipf("search too small (%d candidates) to exercise the budget", full.Evaluated)
	}
	a, err := PlanDepthOpts(context.Background(), bl, 4, 16, Options{Budget: 2})
	if err != nil {
		t.Fatal(err)
	}
	if a.Evaluated >= full.Evaluated {
		t.Errorf("budget 2: evaluated %d, want fewer than the unbounded %d", a.Evaluated, full.Evaluated)
	}
	if a.Best.Sim == nil {
		t.Fatal("budget-truncated search returned no plan")
	}
	b, err := PlanDepthOpts(context.Background(), bl, 4, 16, Options{Budget: 2, Parallelism: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Best.Partition.Equal(b.Best.Partition) || a.Evaluated != b.Evaluated {
		t.Errorf("budget truncation not deterministic: (%v, %d) vs (%v, %d)",
			a.Best.Partition, a.Evaluated, b.Best.Partition, b.Evaluated)
	}
}

// TestDepthLowerBoundSound verifies the pruning bound really is a lower
// bound: no searched candidate at any depth may simulate faster than it.
func TestDepthLowerBoundSound(t *testing.T) {
	for _, mc := range config.Zoo() {
		bl := buildSub(t, mc, 4)
		for _, p := range []int{2, 4, 8} {
			m := 2 * p
			lb := depthLowerBound(bl, p, m)
			res, err := PlanDepth(bl, p, m)
			if err != nil {
				t.Fatalf("%s p=%d: %v", mc.Name, p, err)
			}
			if res.Best.Sim.IterTime < lb-1e-9 {
				t.Errorf("%s p=%d: best %.4f s beats the 'lower bound' %.4f s",
					mc.Name, p, res.Best.Sim.IterTime, lb)
			}
		}
	}
}

// TestPlanClusterPruningMatchesBruteForce compares the engine (with its
// cross-depth pruning) against a brute-force scan that searches every
// divisor depth to completion and scores it the same way.
func TestPlanClusterPruningMatchesBruteForce(t *testing.T) {
	cluster := config.DefaultCluster()
	for _, tc := range []struct {
		mc  config.Model
		mbs int
		gbs int
	}{
		{config.GPT2_345M(), 4, 128},
		{config.GPT2_345M(), 32, 512},
		{config.BERTLarge(), 8, 256},
	} {
		run := config.Run{MicroBatch: tc.mbs, GlobalBatch: tc.gbs, Checkpoint: true}
		spec, bl, err := PlanClusterOpts(context.Background(), tc.mc, run, cluster, Options{})
		if err != nil {
			t.Fatalf("%s mbs=%d: %v", tc.mc.Name, tc.mbs, err)
		}

		bestDepth, bestScore := 0, 0.0
		for p := 1; p <= cluster.NumGPUs && p <= bl.Len(); p++ {
			if cluster.NumGPUs%p != 0 {
				continue
			}
			dp := cluster.NumGPUs / p
			m := run.MicroBatches(dp)
			res, err := PlanDepth(bl, p, m)
			if err != nil {
				t.Fatalf("%s p=%d: %v", tc.mc.Name, p, err)
			}
			if ok, _ := memory.Fits(bl, res.Best.Partition, m, memory.OneFOneB, 1, cluster.Device); !ok {
				continue
			}
			score := res.Best.Sim.IterTime
			var ar float64
			for _, params := range res.Best.Partition.StageParams(bl) {
				if v := cost.AllReduceTime(params*4, dp, cluster.Network); v > ar {
					ar = v
				}
			}
			score += ar
			if bestDepth == 0 || score < bestScore {
				bestDepth, bestScore = p, score
			}
		}
		if spec.Depth() != bestDepth {
			t.Errorf("%s mbs=%d: engine chose depth %d, brute force depth %d", tc.mc.Name, tc.mbs, spec.Depth(), bestDepth)
		}
		if diff := spec.Predicted - bestScore; diff > 1e-12 || diff < -1e-12 {
			t.Errorf("%s mbs=%d: engine predicted %.6f s, brute force %.6f s", tc.mc.Name, tc.mbs, spec.Predicted, bestScore)
		}
	}
}

// TestPrefetchDoesNotChangeResults forces the speculative cache-warming path
// (normally gated on spare cores) and checks the search result and telemetry
// are identical to the plain engine's — speculation must only ever touch the
// cache.
func TestPrefetchDoesNotChangeResults(t *testing.T) {
	bl := buildSub(t, config.GPT2_762M(), 4)
	plain, err := PlanDepthOpts(context.Background(), bl, 4, 16, Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	e := newEngine(bl, Options{Parallelism: 4})
	e.prefetch = true
	d := &depthState{p: 4, m: 16, seen: make(map[string]bool)}
	if err := e.run(context.Background(), []*depthState{d}, nil, nil); err != nil {
		t.Fatal(err)
	}
	if !d.best.Partition.Equal(plain.Best.Partition) {
		t.Errorf("prefetch changed the best partition: %v vs %v", d.best.Partition, plain.Best.Partition)
	}
	if d.tel.Candidates != plain.Telemetry.Candidates || d.tel.Accepted != plain.Telemetry.Accepted {
		t.Errorf("prefetch changed telemetry: (%d, %d) vs (%d, %d)",
			d.tel.Candidates, d.tel.Accepted, plain.Telemetry.Candidates, plain.Telemetry.Accepted)
	}
}

// TestSimCacheDedup checks the memoization layer: concurrent evaluations of
// the same partition compute once and share the result.
func TestSimCacheDedup(t *testing.T) {
	bl := buildSub(t, config.GPT2_345M(), 4)
	e := newEngine(bl, Options{})
	part, err := partitionOf(bl.Len(), 4)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan Candidate, 16)
	for i := 0; i < 16; i++ {
		go func() {
			c, err := e.cache.eval(bl, part, 8)
			if err != nil {
				t.Error(err)
			}
			done <- c
		}()
	}
	first := <-done
	for i := 1; i < 16; i++ {
		c := <-done
		if c.Sim != first.Sim {
			t.Fatal("cache returned distinct results for the same key")
		}
	}
	if got := e.cache.misses.Load(); got != 1 {
		t.Errorf("misses = %d, want 1 (single computation)", got)
	}
	if got := e.cache.hits.Load(); got != 15 {
		t.Errorf("hits = %d, want 15", got)
	}
}

func partitionOf(n, p int) (partition.Partition, error) {
	bounds := make([]int, p+1)
	for i := range bounds {
		bounds[i] = i * n / p
	}
	return partition.New(bounds, n)
}
