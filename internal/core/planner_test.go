package core

import (
	"testing"

	"autopipe/internal/config"
	"autopipe/internal/cost"
	"autopipe/internal/model"
	"autopipe/internal/partition"
)

func buildSub(t *testing.T, mc config.Model, mbs int) *model.Blocks {
	t.Helper()
	cl := config.DefaultCluster()
	bl, err := model.Build(mc, cost.Geometry{MicroBatch: mbs, Checkpoint: true},
		cl.Device, cl.Network, model.SubLayer)
	if err != nil {
		t.Fatal(err)
	}
	return bl
}

func TestPlanDepthReproducesTable2Scheme4(t *testing.T) {
	// The planner's choice for GPT-2 345M at 4 stages is Table II's
	// partition 4: 6.5 / 6.5 / 6.5 / 4.5 layers.
	bl := buildSub(t, config.GPT2_345M(), 4)
	res, err := PlanDepth(bl, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	got := res.Best.Partition.LayerCounts(bl)
	want := []float64{6.5, 6.5, 6.5, 4.5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("layer counts %v, want %v (paper Table II, partition 4)", got, want)
		}
	}
}

func TestPlanDepthNeverWorseThanSeed(t *testing.T) {
	for _, mc := range config.Zoo() {
		for _, p := range []int{2, 4, 8} {
			bl := buildSub(t, mc, 4)
			res, err := PlanDepth(bl, p, 2*p)
			if err != nil {
				t.Fatalf("%s p=%d: %v", mc.Name, p, err)
			}
			if res.Best.Sim.IterTime > res.Seed.Sim.IterTime+1e-12 {
				t.Errorf("%s p=%d: heuristic (%.2f ms) worse than Algorithm 1 seed (%.2f ms)",
					mc.Name, p, res.Best.Sim.IterTime*1e3, res.Seed.Sim.IterTime*1e3)
			}
			if res.Evaluated < 1 {
				t.Errorf("%s p=%d: no schemes evaluated", mc.Name, p)
			}
		}
	}
}

func TestPlanDepthBeatsEvenPartition(t *testing.T) {
	// The balanced partition must beat Megatron's even split whenever the
	// head/embedding imbalance matters (any depth).
	bl := buildSub(t, config.GPT2_345M(), 4)
	for _, p := range []int{2, 4, 8, 12} {
		res, err := PlanDepth(bl, p, 2*p)
		if err != nil {
			t.Fatal(err)
		}
		// Build the even partition by hand: L/p layers per stage.
		L := bl.Model.Layers
		bounds := make([]int, p+1)
		for i := 1; i < p; i++ {
			bounds[i] = 1 + 2*(L/p)*i
		}
		bounds[p] = bl.Len()
		even, err := partition.New(bounds, bl.Len())
		if err != nil {
			t.Fatal(err)
		}
		evenC, err := evaluate(bl, even, 2*p)
		if err != nil {
			t.Fatal(err)
		}
		if res.Best.Sim.IterTime >= evenC.Sim.IterTime {
			t.Errorf("p=%d: planner (%.2f ms) no better than even partition (%.2f ms)",
				p, res.Best.Sim.IterTime*1e3, evenC.Sim.IterTime*1e3)
		}
	}
}

func TestPlanDepthSingleStage(t *testing.T) {
	bl := buildSub(t, config.GPT2_345M(), 4)
	res, err := PlanDepth(bl, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Partition.Stages() != 1 {
		t.Errorf("depth 1 produced %d stages", res.Best.Partition.Stages())
	}
}

func TestAdjustAfterMasterSatisfiesEq1(t *testing.T) {
	// Build a deliberately bad suffix: the master stage is 0 and the tail
	// stages are front-loaded; the adjustment must repack them so that the
	// cumulative suffix load satisfies Eq. (1) stage by stage (as far as
	// total load permits).
	bl := buildSub(t, config.GPT2_345M(), 4)
	part, err := partition.New([]int{0, 25, 45, 48, 50}, bl.Len())
	if err != nil {
		t.Fatal(err)
	}
	adj, changed := adjustAfterMaster(bl, part, 0)
	if !changed {
		t.Fatal("adjustment did not change the lopsided suffix")
	}
	f, b := adj.StageTimes(bl)
	bi := b[0]
	cum := 0.0
	for s := 1; s <= 2; s++ { // all but the absorbing last stage
		cum += f[s] + b[s]
		if cum > float64(s)*bi+1e-9 {
			t.Errorf("Eq.(1) violated at stage %d: cumulative %.3f > %d*b_0 = %.3f", s, cum, s, float64(s)*bi)
		}
	}
}

func TestPlanClusterDepthChoicesMatchPaper(t *testing.T) {
	cl := config.DefaultCluster()
	cases := []struct {
		mc        config.Model
		mbs, gbs  int
		gpus      int
		wantDepth int
	}{
		// Low memory: complete data parallelism (Table III).
		{config.GPT2_345M(), 4, 128, 4, 1},
		{config.GPT2_345M(), 4, 128, 16, 1},
		// High memory: 2-stage pipelines for GPT-2 345M at micro-batch 32,
		// 4-stage for GPT-2 1.3B at micro-batch 16 (Table IV).
		{config.GPT2_345M(), 32, 512, 4, 2},
		{config.GPT2_345M(), 32, 512, 8, 2},
		{config.GPT2_1_3B(), 16, 512, 4, 4},
		{config.GPT2_1_3B(), 16, 512, 8, 4},
	}
	for _, tc := range cases {
		c := cl
		c.NumGPUs = tc.gpus
		run := config.Run{MicroBatch: tc.mbs, GlobalBatch: tc.gbs, Checkpoint: true}
		spec, _, err := PlanCluster(tc.mc, run, c)
		if err != nil {
			t.Fatalf("%s %d GPUs mbs %d: %v", tc.mc.Name, tc.gpus, tc.mbs, err)
		}
		if spec.Depth() != tc.wantDepth {
			t.Errorf("%s %d GPUs mbs %d: depth %d, want %d (paper)", tc.mc.Name, tc.gpus, tc.mbs, spec.Depth(), tc.wantDepth)
		}
		if spec.Depth() > 1 && spec.NumSliced < 1 {
			t.Errorf("%s %d GPUs: pipeline plan without slicing", tc.mc.Name, tc.gpus)
		}
		if d := spec.Devices(); d != tc.gpus {
			t.Errorf("%s: plan uses %d devices, want %d", tc.mc.Name, d, tc.gpus)
		}
	}
}

func TestPlanClusterRejectsInfeasible(t *testing.T) {
	cl := config.DefaultCluster()
	cl.NumGPUs = 1
	// GPT-2 1.3B cannot fit one 24 GB device at micro-batch 16 at any depth.
	run := config.Run{MicroBatch: 16, GlobalBatch: 512, Checkpoint: true}
	if _, _, err := PlanCluster(config.GPT2_1_3B(), run, cl); err == nil {
		t.Error("want error: no feasible single-GPU plan for GPT-2 1.3B")
	}
	// Invalid run configs are rejected up front.
	if _, _, err := PlanCluster(config.GPT2_345M(), config.Run{}, cl); err == nil {
		t.Error("want error for invalid run")
	}
}

func TestMasterMovesRespectStructure(t *testing.T) {
	bl := buildSub(t, config.GPT2_345M(), 4)
	part, err := partition.Balance(bl.Weights(), 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 3; i++ {
		for _, mv := range masterMoves(bl, part, i, bl.Weights(), nil) {
			if mv.Stages() != part.Stages() {
				t.Errorf("move changed depth: %v", mv.Bounds)
			}
			if mv.Equal(part) {
				t.Errorf("move produced the unchanged partition")
			}
		}
	}
}
