package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"autopipe/internal/config"
	"autopipe/internal/cost"
	"autopipe/internal/errdefs"
	"autopipe/internal/memory"
	"autopipe/internal/model"
	"autopipe/internal/obs"
	"autopipe/internal/partition"
	"autopipe/internal/plan"
	"autopipe/internal/sim"
	"autopipe/internal/slicer"
)

// This file implements the concurrent plan-space search engine behind the
// Planner API. The search fans out across pipeline depths × replication
// factors × candidate partitions on a bounded worker pool, with a memoized
// simulation cache and a shared best-so-far bound for cross-depth pruning.
//
// Determinism is by construction, not by luck: the search advances in global
// waves. Each wave is a fixed, ordered list of candidate expansions; workers
// evaluate them concurrently into private slots (all simulator calls are
// pure and memoized), and then a single sequential merge replays the slots
// in wave order to update the incumbent, the visited set, and the next wave.
// Parallelism therefore changes only how fast a wave is evaluated — never
// which candidates are explored, which one wins, or any telemetry counter —
// so parallel and sequential runs return byte-identical plans.

// Options configures the plan-space search engine. The zero value searches
// with GOMAXPROCS workers, no candidate budget, and no telemetry registry.
type Options struct {
	// Parallelism is the worker-pool size evaluating candidate partitions;
	// <= 0 means GOMAXPROCS. Plans are identical at every setting.
	Parallelism int
	// Budget caps the number of distinct candidate partitions the engine
	// simulates across the whole search (0 = unlimited). It is checked at
	// wave boundaries — the wave in flight completes, so the cap can be
	// overshot by one wave — and the truncated search still returns the best
	// plan found, deterministically.
	Budget int
	// Obs, when non-nil, receives search telemetry: per-depth counters under
	// "planner.p<depth>.*" and engine-level metrics under "planner.engine.*".
	Obs *obs.Registry
}

func (o Options) parallelism() int {
	if o.Parallelism <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return o.Parallelism
}

// runTasks evaluates task(0..n) with at most width concurrent workers. Tasks
// write results into their own pre-allocated slots; the caller merges them in
// deterministic order afterwards. Cancellation is checked between tasks;
// in-flight tasks finish.
func runTasks(ctx context.Context, width, n int, task func(int)) {
	if width > n {
		width = n
	}
	if width <= 1 {
		for i := 0; i < n; i++ {
			if ctx.Err() != nil {
				return
			}
			task(i)
		}
		return
	}
	idx := make(chan int) //lint:allow hotalloc per-wave worker pool, bounded by parallelism
	var wg sync.WaitGroup
	wg.Add(width)
	for w := 0; w < width; w++ {
		go func() { //lint:allow hotalloc per-wave worker pool, bounded by parallelism
			defer wg.Done()
			for i := range idx {
				if ctx.Err() == nil {
					task(i)
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
}

// cacheKey identifies one simulator evaluation: the partition bounds plus the
// micro-batch count (different depths plan with different counts).
type cacheKey struct {
	part  string
	micro int
}

type cacheEntry struct {
	once sync.Once
	cand Candidate
	err  error
}

// simCache memoizes simulator evaluations. It is safe for concurrent
// readers: the first caller of a key computes under a per-key once, and
// concurrent callers of the same key block on that computation and share the
// result instead of duplicating it.
type simCache struct {
	entries      sync.Map // cacheKey -> *cacheEntry
	hits, misses atomic.Int64
}

func (c *simCache) eval(bl *model.Blocks, part partition.Partition, m int) (Candidate, error) {
	key := cacheKey{part: part.Key(), micro: m}
	//lint:allow hotalloc memoized: entry and key boxing amortize over every repeat evaluation
	v, loaded := c.entries.LoadOrStore(key, new(cacheEntry))
	e := v.(*cacheEntry)
	if loaded {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	e.once.Do(func() { //lint:allow hotalloc once per distinct cache key
		r, err := sim.SimulateProfile(part.Profile(bl, m))
		if err != nil {
			e.err = err
			return
		}
		e.cand = Candidate{Partition: part, Sim: r}
	})
	return e.cand, e.err
}

// depthState is one fixed-depth search progressing through global waves.
type depthState struct {
	p, dp, m int
	// lowerBound is a sound lower bound on the score of any plan this depth
	// can produce; the cross-depth pruning rule compares it against the
	// shared best-so-far bound.
	lowerBound float64

	seen map[string]bool
	tel  Telemetry
	best Candidate
	seed Candidate
	wave []Candidate
	next []Candidate

	done bool
	// pruned marks a depth abandoned because lowerBound proved it cannot
	// beat an already-completed depth; its partial telemetry is kept but it
	// is excluded from the final reduction.
	pruned bool
	// truncated marks a depth stopped by the search budget; its best-so-far
	// still competes in the reduction.
	truncated bool
	err       error

	// Completion outputs (valid once done && err == nil && !pruned).
	feasible bool
	score    float64
}

// record accounts one evaluated candidate in deterministic merge order and
// reports whether it is new to this depth's search.
func (d *depthState) record(c Candidate) bool {
	key := c.Partition.Key()
	if d.seen[key] {
		return false
	}
	d.seen[key] = true
	d.tel.Candidates++
	if d.best.Sim == nil || candidateLess(c, d.best) {
		d.best = c
		d.tel.Accepted++
	}
	d.tel.Convergence = append(d.tel.Convergence, d.best.Sim.IterTime)
	return true
}

// candidateLess is the deterministic reduction order: strictly better
// iteration time wins; exact ties break toward the lexicographically smaller
// partition bounds so parallel and sequential runs agree bit-for-bit.
func candidateLess(a, b Candidate) bool {
	if a.Sim.IterTime != b.Sim.IterTime {
		return a.Sim.IterTime < b.Sim.IterTime
	}
	return lexLess(a.Partition.Bounds, b.Partition.Bounds)
}

func lexLess(a, b []int) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// maxMasterMoves bounds masterMoves' output: two block moves, each with at
// most one rebalanced variant. The fixed-size arrays in expansion are sized
// by it so phase B evaluates into pre-existing slots without allocating.
const maxMasterMoves = 4

// expansion is the parallel-phase slot of one wave item: the step-2 adjusted
// continuation (phase A) and the evaluated step-3 master moves (phase B).
type expansion struct {
	d    *depthState
	item Candidate

	// adj is the evaluated step-2 adjustment (adjusted is false when it left
	// the partition unchanged); cur/master are the continuation point for
	// step 3.
	adj      Candidate
	adjusted bool
	cur      Candidate
	master   int
	err      error

	moves    []partition.Partition
	moveCand [maxMasterMoves]Candidate
	moveErr  [maxMasterMoves]error
}

// seedSlot, spec, and moveRef are the per-task slots of the three stored
// worker tasks (seedTask, phaseATask, phaseBTask).
type seedSlot struct {
	cand Candidate
	err  error
}

// spec is one speculative cache-warming evaluation.
type spec struct {
	part partition.Partition
	m    int
}

// moveRef addresses one master-move evaluation: expansion x, move index j.
type moveRef struct {
	x *expansion
	j int
}

// engine runs wave-synchronous searches over one block array.
type engine struct {
	opts    Options
	par     int
	bl      *model.Blocks
	weights []float64
	cache   simCache
	// prefetch enables speculative evaluation: while phase A computes an
	// item's cooldown adjustment, idle workers warm the cache with the
	// master moves of the unadjusted partition — exactly phase B's task
	// list whenever the adjustment turns out to be a no-op, which is the
	// common case near convergence. Speculation only ever touches the
	// cache, so results are identical with it on or off; it is disabled
	// when there are no spare cores to run it on.
	prefetch bool

	// Wave-scratch arenas, truncated and refilled every wave so the search
	// loop reuses their backing instead of reallocating per wave, and the
	// current depth list the seed task indexes into.
	ds        []*depthState
	seedSlots []seedSlot
	exps      []expansion
	specs     []spec
	refs      []moveRef
	moveBuf   []partition.Partition

	// The worker tasks, bound once at construction: handing runTasks a
	// stored value instead of a per-wave closure keeps closure creation out
	// of the wave loop.
	taskSeed, taskAB, taskB func(int)
}

func newEngine(bl *model.Blocks, opts Options) *engine {
	e := &engine{opts: opts, par: opts.parallelism(), bl: bl, weights: bl.Weights()}
	e.prefetch = e.par > 1 && runtime.NumCPU() > 1
	e.taskSeed = e.seedTask
	e.taskAB = e.phaseATask
	e.taskB = e.phaseBTask
	return e
}

// seedTask evaluates depth e.ds[i]'s Algorithm 1 seed into e.seedSlots[i].
// runTasks reaches it through the stored e.taskSeed binding, which the
// static call graph cannot follow — hence its own hot annotation.
//
//hot:runs on the search worker pool
func (e *engine) seedTask(i int) {
	d := e.ds[i]
	var part partition.Partition
	var err error
	if d.p == 1 {
		// A single stage has no pipeline structure; simulate directly.
		part, err = partition.New([]int{0, e.bl.Len()}, e.bl.Len()) //lint:allow hotalloc once per depth per search, not per wave
		if err != nil {
			e.seedSlots[i].err = err
			return
		}
	} else if part, err = partition.Balance(e.weights, d.p); err != nil {
		e.seedSlots[i].err = fmt.Errorf("core: seeding depth %d: %w", d.p, err)
		return
	}
	e.seedSlots[i].cand, e.seedSlots[i].err = e.cache.eval(e.bl, part, d.m)
}

// phaseATask runs one phase-A slot: a cooldown adjustment for i < len(exps),
// a speculative cache warm above that.
//
//hot:runs on the search worker pool
func (e *engine) phaseATask(i int) {
	if i < len(e.exps) {
		e.expandA(&e.exps[i])
		return
	}
	s := e.specs[i-len(e.exps)]
	e.cache.eval(e.bl, s.part, s.m) //nolint:errcheck // cache-warming only
}

// phaseBTask evaluates one master-move candidate into its expansion slot.
//
//hot:runs on the search worker pool
func (e *engine) phaseBTask(i int) {
	r := e.refs[i]
	r.x.moveCand[r.j], r.x.moveErr[r.j] = e.cache.eval(e.bl, r.x.moves[r.j], r.x.d.m)
}

// expandA runs the step-2 cooldown adjustment for one wave item (paper
// Eq. (1)): evaluate the adjusted suffix and continue from it — if its
// master stage moved, step 3 starts from the new master.
func (e *engine) expandA(x *expansion) {
	cur := x.item
	x.cur, x.master = cur, cur.Sim.Master
	if adj, changed := adjustAfterMaster(e.bl, cur.Partition, x.master); changed {
		c, err := e.cache.eval(e.bl, adj, x.d.m)
		if err != nil {
			x.err = err
			return
		}
		x.adj, x.adjusted = c, true
		x.cur, x.master = c, c.Sim.Master
	}
	// Step 3 cannot move a master already at stage 0; generate the move
	// candidates here (cheap and pure) so phase B is a flat evaluation list.
	if x.master > 0 {
		x.moves = masterMoves(e.bl, x.cur.Partition, x.master, e.weights, x.moves[:0])
	}
}

// run advances every depth in ds through synchronized waves until all are
// done. prune (may be nil) is consulted at wave boundaries to abandon depths
// that provably cannot win; onComplete (may be nil) fires in deterministic
// order when a depth finishes searching, and typically updates the shared
// bound prune reads.
//
//hot:the wave loop of every plan search
func (e *engine) run(ctx context.Context, ds []*depthState, prune func(*depthState) bool, onComplete func(*depthState)) error {
	finish := func(d *depthState) {
		d.done = true
		d.tel.Final = d.best.Sim.IterTime
		if onComplete != nil {
			onComplete(d)
		}
	}

	// Seed wave: evaluate every depth's Algorithm 1 seed concurrently.
	// Wall-clock telemetry goes through obs.Stopwatch — never time.Now — so
	// the simclock invariant (deterministic packages read no clock that can
	// influence a decision) stays machine-checkable.
	seedSW := obs.NewStopwatch()
	e.ds = ds
	e.seedSlots = make([]seedSlot, len(ds))
	runTasks(ctx, e.par, len(ds), e.taskSeed)
	if err := ctx.Err(); err != nil {
		return err
	}
	seedDur := seedSW.Elapsed()
	for i, d := range ds {
		d.tel.SeedTime = seedDur
		if e.seedSlots[i].err != nil {
			d.err = e.seedSlots[i].err
			d.done = true
			continue
		}
		d.seed = e.seedSlots[i].cand
		d.record(d.seed)
		if d.p == 1 {
			finish(d)
		} else {
			d.wave = d.wave[:0]
			d.wave = append(d.wave, d.seed)
		}
	}

	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		// Budget and pruning gates, on merged (deterministic) state only.
		if e.opts.Budget > 0 {
			total := 0
			for _, d := range ds {
				total += d.tel.Candidates
			}
			if total >= e.opts.Budget {
				for _, d := range ds {
					if !d.done {
						d.truncated = true
						finish(d)
					}
				}
			}
		}
		if prune != nil {
			for _, d := range ds {
				if !d.done && prune(d) {
					d.pruned = true
					d.done = true
				}
			}
		}
		e.exps = e.exps[:0]
		for _, d := range ds {
			if d.done {
				continue
			}
			for _, item := range d.wave {
				e.exps = append(e.exps, expansion{d: d, item: item})
			}
		}
		if len(e.exps) == 0 {
			return nil
		}

		// Phase A: cooldown adjustments, one task per wave item. With spare
		// workers, speculative tasks warm the cache with each item's
		// pre-adjustment master moves; when the adjustment is a no-op those
		// are phase B's exact evaluations, collapsing the round's critical
		// path from two sequential simulations to one.
		adjustSW := obs.NewStopwatch()
		e.specs = e.specs[:0]
		if e.prefetch {
			for xi := range e.exps {
				x := &e.exps[xi]
				if i := x.item.Sim.Master; i > 0 {
					e.moveBuf = masterMoves(e.bl, x.item.Partition, i, e.weights, e.moveBuf[:0])
					for _, mv := range e.moveBuf {
						e.specs = append(e.specs, spec{mv, x.d.m})
					}
				}
			}
		}
		runTasks(ctx, e.par, len(e.exps)+len(e.specs), e.taskAB)
		if err := ctx.Err(); err != nil {
			return err
		}
		adjustDur := adjustSW.Elapsed()

		// Phase B: master-move evaluations, one task per candidate.
		moveSW := obs.NewStopwatch()
		e.refs = e.refs[:0]
		for xi := range e.exps {
			x := &e.exps[xi]
			if x.err != nil {
				continue
			}
			for j := range x.moves {
				e.refs = append(e.refs, moveRef{x, j})
			}
		}
		runTasks(ctx, e.par, len(e.refs), e.taskB)
		if err := ctx.Err(); err != nil {
			return err
		}
		moveDur := moveSW.Elapsed()

		// Merge: replay every expansion in wave order.
		for xi := range e.exps {
			x := &e.exps[xi]
			d := x.d
			if d.err != nil {
				continue
			}
			if x.err != nil {
				d.err = x.err
				continue
			}
			if x.adjusted {
				d.record(x.adj)
			}
			if x.master == 0 {
				continue
			}
			for j, c := range x.moveCand[:len(x.moves)] {
				if x.moveErr[j] != nil {
					d.err = x.moveErr[j]
					break
				}
				// Only schemes whose master moved forward (<= the current
				// master) are refined further; a receding master means the
				// move made things worse.
				if fresh := d.record(c); fresh && c.Sim.Master <= x.master {
					d.next = append(d.next, c)
				}
			}
		}
		for _, d := range ds {
			if d.done {
				continue
			}
			d.tel.AdjustTime += adjustDur
			d.tel.MoveTime += moveDur
			if d.err != nil {
				d.done = true
				continue
			}
			// Swap rather than discard: next inherits the drained wave's
			// backing, so steady-state rounds append into reused capacity.
			d.wave, d.next = d.next, d.wave[:0]
			if len(d.wave) == 0 {
				finish(d)
			}
		}
	}
}

func (e *engine) publish(ds []*depthState, total time.Duration) {
	reg := e.opts.Obs
	if reg == nil {
		return
	}
	pruned := 0
	for _, d := range ds {
		d.tel.Publish(reg, fmt.Sprintf("planner.p%d", d.p))
		if d.pruned {
			pruned++
		}
	}
	reg.Gauge("planner.engine.search_s").Set(total.Seconds())
	reg.Gauge("planner.engine.parallelism").Set(float64(e.par))
	reg.Counter("planner.engine.cache_hits").Add(float64(e.cache.hits.Load()))
	reg.Counter("planner.engine.cache_misses").Add(float64(e.cache.misses.Load()))
	reg.Counter("planner.engine.depths_pruned").Add(float64(pruned))
}

// depthLowerBound returns a sound lower bound on the simulated iteration
// time of ANY partition of bl into p stages with m micro-batches — the
// static bound the cross-depth pruning rule compares against the shared
// best-so-far score. Three observations, each dropping only non-negative
// communication terms:
//
//  1. every stage serializes its m forwards and m backwards, and the
//     heaviest stage carries at least 1/p of the total block weight;
//  2. the stage holding the heaviest block carries at least that block;
//  3. the last stage holds the final block, the first micro-batch's forward
//     must traverse every earlier stage before the last stage's serialized
//     work, and the final backward must ripple back up.
func depthLowerBound(bl *model.Blocks, p, m int) float64 {
	var total, wMax float64
	for _, blk := range bl.List {
		w := blk.Weight()
		total += w
		if w > wMax {
			wMax = w
		}
	}
	wLast := bl.List[len(bl.List)-1].Weight()
	lb := float64(m) * total / float64(p)
	if v := float64(m) * wMax; v > lb {
		lb = v
	}
	if v := total + float64(m-1)*wLast; v > lb {
		lb = v
	}
	return lb
}

// PlanClusterOpts runs the full AutoPipe planner for a model on a cluster
// with explicit search options and cancellation. It considers every pipeline
// depth that divides the GPU count (AutoPipe keeps the data-parallel size
// uniform across stages — one of the reasons its search is an order of
// magnitude faster than Piper's, §IV-D), searches all depths concurrently on
// one worker pool, prunes depths whose lower bound cannot beat the shared
// best-so-far score, and finally sizes the micro-batch slicing with
// Algorithm 2 on the winning partition.
//
// The returned error wraps errdefs.ErrBadConfig for invalid inputs,
// errdefs.ErrInfeasible when no plan fits device memory, and the context
// error when ctx is cancelled or times out.
func PlanClusterOpts(ctx context.Context, mc config.Model, run config.Run, cluster config.Cluster, opts Options) (*plan.Spec, *model.Blocks, error) {
	if err := ctx.Err(); err != nil {
		return nil, nil, fmt.Errorf("core: plan %s: %w", mc.Name, err)
	}
	if err := run.Validate(); err != nil {
		return nil, nil, err
	}
	searchSW := obs.NewStopwatch()
	geom := cost.Geometry{MicroBatch: run.MicroBatch, Checkpoint: run.Checkpoint}
	bl, err := model.Build(mc, geom, cluster.Device, cluster.Network, model.SubLayer)
	if err != nil {
		return nil, nil, err
	}
	g := cluster.NumGPUs
	if g <= 0 {
		return nil, nil, fmt.Errorf("%w: core: cluster has no GPUs", errdefs.ErrBadConfig)
	}

	e := newEngine(bl, opts)
	var ds []*depthState
	for p := 1; p <= g && p <= bl.Len(); p++ {
		if g%p != 0 {
			continue
		}
		dp := g / p
		m := run.MicroBatches(dp)
		ds = append(ds, &depthState{
			p: p, dp: dp, m: m,
			lowerBound: depthLowerBound(bl, p, m),
			seen:       make(map[string]bool),
		})
	}

	// Shared best-so-far bound across depths, updated in deterministic merge
	// order as depths complete.
	var (
		bound     float64
		haveBound bool
	)
	onComplete := func(d *depthState) {
		// Exact memory feasibility (AutoPipe plans with the real budget; no
		// conservative margin is needed because the partitioner's load
		// balance keeps estimates tight).
		if ok, _ := memory.Fits(bl, d.best.Partition, d.m, memory.OneFOneB, 1, cluster.Device); !ok {
			return
		}
		d.feasible = true
		// Score: simulated iteration time plus the slowest stage's gradient
		// all-reduce across the dp replicas.
		var ar float64
		for _, params := range d.best.Partition.StageParams(bl) {
			if t := cost.AllReduceTime(params*4, d.dp, cluster.Network); t > ar {
				ar = t
			}
		}
		d.score = d.best.Sim.IterTime + ar
		if !haveBound || d.score < bound {
			bound, haveBound = d.score, true
		}
	}
	prune := func(d *depthState) bool { return haveBound && d.lowerBound >= bound }
	if err := e.run(ctx, ds, prune, onComplete); err != nil {
		return nil, nil, fmt.Errorf("core: plan %s: %w", mc.Name, err)
	}

	// Deterministic reduction in ascending depth order; strict improvement
	// keeps the shallowest plan on exact score ties.
	var best *depthState
	evaluated, accepted := 0, 0
	for _, d := range ds {
		evaluated += d.tel.Candidates
		accepted += d.tel.Accepted
		if d.err != nil || d.pruned || !d.feasible {
			continue
		}
		if best == nil || d.score < best.score {
			best = d
		}
	}
	if best == nil {
		return nil, nil, fmt.Errorf("%w: core: no memory-feasible pipeline plan for %s on %d GPUs at micro-batch %d",
			errdefs.ErrInfeasible, mc.Name, g, run.MicroBatch)
	}
	devs := make([]int, best.p)
	for i := range devs {
		devs[i] = best.dp
	}
	spec := &plan.Spec{
		Planner:      "AutoPipe",
		Partition:    best.best.Partition,
		StageDevices: devs,
	}

	// Size the warmup micro-batch slicing for the chosen partition.
	if spec.Depth() > 1 {
		sp, err := slicer.SolveProfile(spec.Partition.Profile(bl, best.m))
		if err != nil {
			return nil, nil, err
		}
		spec.NumSliced = sp.NumSliced
		spec.SliceRounds = sp.Rounds
		spec.SliceConverged = sp.Converged
	} else {
		// A single stage has nothing to slice; Algorithm 2 is trivially done.
		spec.SliceConverged = true
	}

	spec.SearchTime = searchSW.Elapsed()
	spec.Evaluated = evaluated
	spec.Accepted = accepted
	spec.Predicted = best.score
	e.publish(ds, spec.SearchTime)
	return spec, bl, nil
}

// PlanDepthOpts searches for a balanced partition of bl into p stages for
// iterations of m micro-batches, with explicit search options and
// cancellation. Candidate evaluation fans out on the engine's worker pool;
// the result is identical at every parallelism setting.
func PlanDepthOpts(ctx context.Context, bl *model.Blocks, p, m int, opts Options) (*PlanResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: plan depth %d: %w", p, err)
	}
	if p < 1 || p > bl.Len() {
		return nil, fmt.Errorf("%w: core: depth %d out of range [1, %d]", errdefs.ErrBadConfig, p, bl.Len())
	}
	if m <= 0 {
		return nil, fmt.Errorf("%w: core: micro-batch count must be positive, got %d", errdefs.ErrBadConfig, m)
	}
	e := newEngine(bl, opts)
	d := &depthState{p: p, m: m, seen: make(map[string]bool)}
	if err := e.run(ctx, []*depthState{d}, nil, nil); err != nil {
		return nil, fmt.Errorf("core: plan depth %d: %w", p, err)
	}
	if d.err != nil {
		return nil, d.err
	}
	e.publish([]*depthState{d}, d.tel.SeedTime+d.tel.AdjustTime+d.tel.MoveTime)
	return &PlanResult{Best: d.best, Seed: d.seed, Evaluated: d.tel.Candidates, Telemetry: d.tel}, nil
}
