// Package core implements the AutoPipe Planner (paper §III-B): the heuristic
// search that starts from the balanced dynamic-programming seed of
// Algorithm 1 and refines it by flattening Cooldown-phase bubbles (Eq. (1))
// and by shifting the master stage forward, evaluating every candidate with
// the analytic pipeline simulator.
package core

import (
	"context"
	"time"

	"autopipe/internal/model"
	"autopipe/internal/obs"
	"autopipe/internal/partition"
	"autopipe/internal/sim"
)

// Candidate couples a partition with its simulated outcome.
type Candidate struct {
	Partition partition.Partition
	Sim       *sim.Result
}

// Telemetry records the search effort of one fixed-depth planner run: how
// many candidates the simulator assessed, how many improved the incumbent,
// the convergence curve, and the wall-clock spent in each phase of the
// heuristic (Algorithm 1 seed, step-2 cooldown flattening, step-3 master
// moves).
type Telemetry struct {
	// Candidates counts partition schemes the simulator evaluated.
	Candidates int
	// Accepted counts evaluations that improved the best iteration time.
	Accepted int
	// Convergence holds the best predicted iteration time after each
	// evaluation; its last element equals Final.
	Convergence []float64
	// Final is the best predicted iteration time in seconds.
	Final float64
	// SeedTime covers the Algorithm 1 dynamic-programming seed (including
	// its simulation); AdjustTime the step-2 suffix redistribution;
	// MoveTime the step-3 master-move generation and evaluation.
	SeedTime   time.Duration
	AdjustTime time.Duration
	MoveTime   time.Duration
}

// Publish exports the telemetry into an obs registry under the prefix, e.g.
// "planner.p4.candidates".
func (t *Telemetry) Publish(reg *obs.Registry, prefix string) {
	if reg == nil {
		return
	}
	reg.Counter(prefix + ".candidates").Add(float64(t.Candidates))
	reg.Counter(prefix + ".accepted").Add(float64(t.Accepted))
	reg.Gauge(prefix + ".final_iter_s").Set(t.Final)
	reg.Gauge(prefix + ".seed_s").Set(t.SeedTime.Seconds())
	reg.Gauge(prefix + ".adjust_s").Set(t.AdjustTime.Seconds())
	reg.Gauge(prefix + ".move_s").Set(t.MoveTime.Seconds())
	h := reg.Histogram(prefix + ".convergence_s")
	for _, v := range t.Convergence {
		h.Observe(v)
	}
}

// PlanResult is the outcome of a fixed-depth heuristic search.
type PlanResult struct {
	Best Candidate
	// Evaluated counts how many partition schemes the simulator assessed —
	// the search-effort metric behind the paper's Fig. 12 comparison. It
	// always equals Telemetry.Candidates.
	Evaluated int
	// Seed is the Algorithm 1 starting point, kept for ablations.
	Seed Candidate
	// Telemetry details the search effort behind Best.
	Telemetry Telemetry
}

// PlanDepth searches for a balanced partition of bl into p stages for
// iterations of m micro-batches.
//
// Deprecated: use PlanDepthOpts, which adds cancellation, parallel candidate
// evaluation, and engine options. PlanDepth is equivalent to calling
// PlanDepthOpts with context.Background() and a single-worker Options.
func PlanDepth(bl *model.Blocks, p, m int) (*PlanResult, error) {
	return PlanDepthOpts(context.Background(), bl, p, m, Options{Parallelism: 1})
}

// evaluate simulates one partition without the engine's cache; kept for
// one-off evaluations (seed ablations, tests).
func evaluate(bl *model.Blocks, part partition.Partition, m int) (Candidate, error) {
	r, err := sim.SimulateProfile(part.Profile(bl, m))
	if err != nil {
		return Candidate{}, err
	}
	return Candidate{Partition: part, Sim: r}, nil
}

// adjustAfterMaster redistributes the blocks after master stage i so that
// for every s > i the cumulative load satisfies Eq. (1):
//
//	sum_{j=i+1..s} (f_j + b_j) <= (s - i) * b_i
//
// which removes the bubble in the master stage's Cooldown phase (paper
// Fig. 7(c)). It packs the suffix greedily left-to-right against the
// cumulative allowance while keeping every stage non-empty.
func adjustAfterMaster(bl *model.Blocks, part partition.Partition, i int) (partition.Partition, bool) {
	p := part.Stages()
	if i >= p-1 {
		return part, false
	}
	_, bTimes := part.StageTimes(bl)
	bi := bTimes[i]

	start := part.Bounds[i+1]
	end := part.Bounds[p]
	nBlocks := end - start
	nStages := p - i - 1
	if nBlocks < nStages {
		return part, false
	}

	out := part.Clone()
	cum := 0.0
	idx := start
	for s := 1; s <= nStages; s++ { // s-th stage after the master
		remainingStages := nStages - s
		allowance := float64(s) * bi
		// Take at least one block, then keep taking while the cumulative
		// weight stays within the allowance and enough blocks remain for
		// the later stages.
		take := 1
		cum += bl.List[idx].Weight()
		for idx+take < end-remainingStages {
			next := bl.List[idx+take].Weight()
			if cum+next > allowance {
				break
			}
			cum += next
			take++
		}
		if remainingStages == 0 {
			// Last stage absorbs whatever is left.
			take = end - idx
		}
		idx += take
		out.Bounds[i+1+s] = idx
	}
	if out.Equal(part) {
		return part, false
	}
	return out, true
}

// masterMoves generates the paper's step-3 candidates: shift the master
// stage forward by moving its first block to stage i-1 or its last block to
// stage i+1, each with and without re-running Algorithm 1 on the prefix up
// to and including the stage whose size changed. Candidates — at most
// maxMasterMoves — are appended to dst, so wave-loop callers can reuse a
// buffer.
func masterMoves(bl *model.Blocks, part partition.Partition, i int, weights []float64, out []partition.Partition) []partition.Partition {
	p := part.Stages()

	// Move the first block of stage i to stage i-1.
	if i > 0 && part.Size(i) > 1 {
		moved := part.Clone()
		moved.Bounds[i]++
		out = append(out, moved)
		// Re-balance stages 0..i-1 over the grown prefix.
		if reb, err := partition.BalancePrefix(moved, weights, i); err == nil && !reb.Equal(moved) {
			out = append(out, reb)
		}
	}

	// Move the last block of stage i to stage i+1.
	if i < p-1 && part.Size(i) > 1 {
		moved := part.Clone()
		moved.Bounds[i+1]--
		out = append(out, moved)
		// Re-balance stages 0..i over the shrunk prefix.
		if reb, err := partition.BalancePrefix(moved, weights, i+1); err == nil && !reb.Equal(moved) {
			out = append(out, reb)
		}
	}
	return out
}
