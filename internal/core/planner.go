// Package core implements the AutoPipe Planner (paper §III-B): the heuristic
// search that starts from the balanced dynamic-programming seed of
// Algorithm 1 and refines it by flattening Cooldown-phase bubbles (Eq. (1))
// and by shifting the master stage forward, evaluating every candidate with
// the analytic pipeline simulator.
package core

import (
	"fmt"
	"time"

	"autopipe/internal/model"
	"autopipe/internal/obs"
	"autopipe/internal/partition"
	"autopipe/internal/sim"
)

// Candidate couples a partition with its simulated outcome.
type Candidate struct {
	Partition partition.Partition
	Sim       *sim.Result
}

// Telemetry records the search effort of one fixed-depth planner run: how
// many candidates the simulator assessed, how many improved the incumbent,
// the convergence curve, and the wall-clock spent in each phase of the
// heuristic (Algorithm 1 seed, step-2 cooldown flattening, step-3 master
// moves).
type Telemetry struct {
	// Candidates counts partition schemes the simulator evaluated.
	Candidates int
	// Accepted counts evaluations that improved the best iteration time.
	Accepted int
	// Convergence holds the best predicted iteration time after each
	// evaluation; its last element equals Final.
	Convergence []float64
	// Final is the best predicted iteration time in seconds.
	Final float64
	// SeedTime covers the Algorithm 1 dynamic-programming seed (including
	// its simulation); AdjustTime the step-2 suffix redistribution;
	// MoveTime the step-3 master-move generation and evaluation.
	SeedTime   time.Duration
	AdjustTime time.Duration
	MoveTime   time.Duration
}

// Publish exports the telemetry into an obs registry under the prefix, e.g.
// "planner.p4.candidates".
func (t *Telemetry) Publish(reg *obs.Registry, prefix string) {
	if reg == nil {
		return
	}
	reg.Counter(prefix + ".candidates").Add(float64(t.Candidates))
	reg.Counter(prefix + ".accepted").Add(float64(t.Accepted))
	reg.Gauge(prefix + ".final_iter_s").Set(t.Final)
	reg.Gauge(prefix + ".seed_s").Set(t.SeedTime.Seconds())
	reg.Gauge(prefix + ".adjust_s").Set(t.AdjustTime.Seconds())
	reg.Gauge(prefix + ".move_s").Set(t.MoveTime.Seconds())
	h := reg.Histogram(prefix + ".convergence_s")
	for _, v := range t.Convergence {
		h.Observe(v)
	}
}

// PlanResult is the outcome of a fixed-depth heuristic search.
type PlanResult struct {
	Best Candidate
	// Evaluated counts how many partition schemes the simulator assessed —
	// the search-effort metric behind the paper's Fig. 12 comparison. It
	// always equals Telemetry.Candidates.
	Evaluated int
	// Seed is the Algorithm 1 starting point, kept for ablations.
	Seed Candidate
	// Telemetry details the search effort behind Best.
	Telemetry Telemetry
}

// PlanDepth searches for a balanced partition of bl into p stages for
// iterations of m micro-batches.
func PlanDepth(bl *model.Blocks, p, m int) (*PlanResult, error) {
	if p == 1 {
		// A single stage has no pipeline structure; simulate directly.
		start := time.Now()
		part, err := partition.New([]int{0, bl.Len()}, bl.Len())
		if err != nil {
			return nil, err
		}
		c, err := evaluate(bl, part, m)
		if err != nil {
			return nil, err
		}
		tel := Telemetry{
			Candidates:  1,
			Accepted:    1,
			Convergence: []float64{c.Sim.IterTime},
			Final:       c.Sim.IterTime,
			SeedTime:    time.Since(start),
		}
		return &PlanResult{Best: c, Seed: c, Evaluated: 1, Telemetry: tel}, nil
	}

	seedStart := time.Now()
	weights := bl.Weights()
	seedPart, err := partition.Balance(weights, p)
	if err != nil {
		return nil, fmt.Errorf("core: seeding depth %d: %w", p, err)
	}
	res := &PlanResult{}
	seed, err := evaluate(bl, seedPart, m)
	if err != nil {
		return nil, err
	}
	res.Seed = seed
	res.Best = seed
	res.Telemetry = Telemetry{
		Candidates:  1,
		Accepted:    1,
		Convergence: []float64{seed.Sim.IterTime},
		SeedTime:    time.Since(seedStart),
	}

	visited := map[string]bool{seedPart.Key(): true}
	queue := []Candidate{seed}

	push := func(part partition.Partition) (Candidate, bool, error) {
		key := part.Key()
		if visited[key] {
			return Candidate{}, false, nil
		}
		visited[key] = true
		c, err := evaluate(bl, part, m)
		if err != nil {
			return Candidate{}, false, err
		}
		res.Telemetry.Candidates++
		if c.Sim.IterTime < res.Best.Sim.IterTime {
			res.Best = c
			res.Telemetry.Accepted++
		}
		res.Telemetry.Convergence = append(res.Telemetry.Convergence, res.Best.Sim.IterTime)
		return c, true, nil
	}

	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		i := cur.Sim.Master

		// Step 2: eliminate Cooldown bubbles after the master stage by
		// redistributing the suffix so that Eq. (1) holds.
		adjustStart := time.Now()
		if adj, changed := adjustAfterMaster(bl, cur.Partition, i); changed {
			c, fresh, err := push(adj)
			if err != nil {
				return nil, err
			}
			if fresh {
				if c.Sim.Master != i {
					// Master changed during adjustment: continue from the
					// adjusted scheme (paper: "stop the adjustment and go
					// to 3 with the adjusted partition scheme").
					cur = c
					i = c.Sim.Master
				} else {
					cur = c
				}
			}
		}
		res.Telemetry.AdjustTime += time.Since(adjustStart)

		// Step 3: the master stage cannot move before stage 0; stop here.
		if i == 0 {
			continue
		}

		moveStart := time.Now()
		for _, next := range masterMoves(bl, cur.Partition, i, weights) {
			c, fresh, err := push(next)
			if err != nil {
				return nil, err
			}
			// Only schemes whose master moved forward (≤ i) are refined
			// further; a receding master means the move made things worse.
			if fresh && c.Sim.Master <= i {
				queue = append(queue, c)
			}
		}
		res.Telemetry.MoveTime += time.Since(moveStart)
	}
	res.Evaluated = res.Telemetry.Candidates
	res.Telemetry.Final = res.Best.Sim.IterTime
	return res, nil
}

func evaluate(bl *model.Blocks, part partition.Partition, m int) (Candidate, error) {
	f, b := part.StageTimes(bl)
	r, err := sim.Simulate(f, b, bl.Comm, m)
	if err != nil {
		return Candidate{}, err
	}
	return Candidate{Partition: part, Sim: r}, nil
}

// adjustAfterMaster redistributes the blocks after master stage i so that
// for every s > i the cumulative load satisfies Eq. (1):
//
//	sum_{j=i+1..s} (f_j + b_j) <= (s - i) * b_i
//
// which removes the bubble in the master stage's Cooldown phase (paper
// Fig. 7(c)). It packs the suffix greedily left-to-right against the
// cumulative allowance while keeping every stage non-empty.
func adjustAfterMaster(bl *model.Blocks, part partition.Partition, i int) (partition.Partition, bool) {
	p := part.Stages()
	if i >= p-1 {
		return part, false
	}
	_, bTimes := part.StageTimes(bl)
	bi := bTimes[i]

	start := part.Bounds[i+1]
	end := part.Bounds[p]
	nBlocks := end - start
	nStages := p - i - 1
	if nBlocks < nStages {
		return part, false
	}

	out := part.Clone()
	cum := 0.0
	idx := start
	for s := 1; s <= nStages; s++ { // s-th stage after the master
		remainingStages := nStages - s
		allowance := float64(s) * bi
		// Take at least one block, then keep taking while the cumulative
		// weight stays within the allowance and enough blocks remain for
		// the later stages.
		take := 1
		cum += bl.List[idx].Weight()
		for idx+take < end-remainingStages {
			next := bl.List[idx+take].Weight()
			if cum+next > allowance {
				break
			}
			cum += next
			take++
		}
		if remainingStages == 0 {
			// Last stage absorbs whatever is left.
			take = end - idx
		}
		idx += take
		out.Bounds[i+1+s] = idx
	}
	if out.Equal(part) {
		return part, false
	}
	return out, true
}

// masterMoves generates the paper's step-3 candidates: shift the master
// stage forward by moving its first block to stage i-1 or its last block to
// stage i+1, each with and without re-running Algorithm 1 on the prefix up
// to and including the stage whose size changed.
func masterMoves(bl *model.Blocks, part partition.Partition, i int, weights []float64) []partition.Partition {
	var out []partition.Partition
	p := part.Stages()

	// Move the first block of stage i to stage i-1.
	if i > 0 && part.Size(i) > 1 {
		moved := part.Clone()
		moved.Bounds[i]++
		out = append(out, moved)
		// Re-balance stages 0..i-1 over the grown prefix.
		if reb, err := partition.BalancePrefix(moved, weights, i); err == nil && !reb.Equal(moved) {
			out = append(out, reb)
		}
	}

	// Move the last block of stage i to stage i+1.
	if i < p-1 && part.Size(i) > 1 {
		moved := part.Clone()
		moved.Bounds[i+1]--
		out = append(out, moved)
		// Re-balance stages 0..i over the shrunk prefix.
		if reb, err := partition.BalancePrefix(moved, weights, i+1); err == nil && !reb.Equal(moved) {
			out = append(out, reb)
		}
	}
	return out
}
