package core

import (
	"context"

	"autopipe/internal/config"
	"autopipe/internal/model"
	"autopipe/internal/plan"
)

// PlanCluster runs the full AutoPipe pipeline planner for a model on a
// cluster.
//
// Deprecated: use PlanClusterOpts, which adds cancellation, parallel
// candidate evaluation, and engine options. PlanCluster is equivalent to
// calling PlanClusterOpts with context.Background() and a single-worker
// Options.
func PlanCluster(mc config.Model, run config.Run, cluster config.Cluster) (*plan.Spec, *model.Blocks, error) {
	return PlanClusterOpts(context.Background(), mc, run, cluster, Options{Parallelism: 1})
}
