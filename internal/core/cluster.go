package core

import (
	"fmt"
	"time"

	"autopipe/internal/config"
	"autopipe/internal/cost"
	"autopipe/internal/memory"
	"autopipe/internal/model"
	"autopipe/internal/plan"
	"autopipe/internal/slicer"
)

// PlanCluster runs the full AutoPipe pipeline planner for a model on a
// cluster: it considers every pipeline depth that divides the GPU count
// (AutoPipe keeps the data-parallel size uniform across stages — one of the
// reasons its search is an order of magnitude faster than Piper's, §IV-D),
// runs the heuristic partition search at each feasible depth, estimates
// iteration time with the analytic simulator plus the gradient all-reduce,
// and finally sizes the micro-batch slicing with Algorithm 2.
func PlanCluster(mc config.Model, run config.Run, cluster config.Cluster) (*plan.Spec, *model.Blocks, error) {
	if err := run.Validate(); err != nil {
		return nil, nil, err
	}
	start := time.Now()
	geom := cost.Geometry{MicroBatch: run.MicroBatch, Checkpoint: run.Checkpoint}
	bl, err := model.Build(mc, geom, cluster.Device, cluster.Network, model.SubLayer)
	if err != nil {
		return nil, nil, err
	}
	g := cluster.NumGPUs
	if g <= 0 {
		return nil, nil, fmt.Errorf("core: cluster has no GPUs")
	}

	var (
		bestSpec  *plan.Spec
		bestScore float64
		evaluated int
		accepted  int
	)
	for p := 1; p <= g && p <= bl.Len(); p++ {
		if g%p != 0 {
			continue
		}
		dp := g / p
		m := run.MicroBatches(dp)
		res, err := PlanDepth(bl, p, m)
		if err != nil {
			continue
		}
		evaluated += res.Evaluated
		accepted += res.Telemetry.Accepted
		// Exact memory feasibility (AutoPipe plans with the real budget; no
		// conservative margin is needed because the partitioner's load
		// balance keeps estimates tight).
		if ok, _ := memory.Fits(bl, res.Best.Partition, m, memory.OneFOneB, 1, cluster.Device); !ok {
			continue
		}
		// Score: simulated iteration time plus the slowest stage's gradient
		// all-reduce across the dp replicas.
		score := res.Best.Sim.IterTime
		var ar float64
		for _, params := range res.Best.Partition.StageParams(bl) {
			if t := cost.AllReduceTime(params*4, dp, cluster.Network); t > ar {
				ar = t
			}
		}
		score += ar
		if bestSpec == nil || score < bestScore {
			devs := make([]int, p)
			for i := range devs {
				devs[i] = dp
			}
			bestSpec = &plan.Spec{
				Planner:      "AutoPipe",
				Partition:    res.Best.Partition,
				StageDevices: devs,
			}
			bestScore = score
		}
	}
	if bestSpec == nil {
		return nil, nil, fmt.Errorf("core: no memory-feasible pipeline plan for %s on %d GPUs at micro-batch %d",
			mc.Name, g, run.MicroBatch)
	}

	// Size the warmup micro-batch slicing for the chosen partition.
	if bestSpec.Depth() > 1 {
		f, b := bestSpec.Partition.StageTimes(bl)
		m := run.MicroBatches(bestSpec.DataParallel())
		sp, err := slicer.Solve(f, b, bl.Comm, m)
		if err != nil {
			return nil, nil, err
		}
		bestSpec.NumSliced = sp.NumSliced
		bestSpec.SliceRounds = sp.Rounds
		bestSpec.SliceConverged = sp.Converged
	} else {
		// A single stage has nothing to slice; Algorithm 2 is trivially done.
		bestSpec.SliceConverged = true
	}

	bestSpec.SearchTime = time.Since(start)
	bestSpec.Evaluated = evaluated
	bestSpec.Accepted = accepted
	bestSpec.Predicted = bestScore
	return bestSpec, bl, nil
}
