// Package partition defines pipeline partitions over a model block array and
// implements Algorithm 1 of the paper: the dynamic program that produces a
// relatively balanced partition used to seed the heuristic search.
package partition

import (
	"fmt"
	"math"
	"strings"

	"autopipe/internal/model"
	"autopipe/internal/sim"
)

// Partition assigns a contiguous block range to each pipeline stage.
// Bounds has Stages()+1 entries; stage i owns blocks [Bounds[i], Bounds[i+1]).
type Partition struct {
	Bounds []int
}

// New builds a partition from explicit bounds and validates its shape over n
// blocks: bounds must start at 0, end at n, and be strictly increasing (no
// empty stages).
func New(bounds []int, n int) (Partition, error) {
	if len(bounds) < 2 {
		return Partition{}, fmt.Errorf("partition: need at least 2 bounds, got %d", len(bounds))
	}
	if bounds[0] != 0 || bounds[len(bounds)-1] != n {
		return Partition{}, fmt.Errorf("partition: bounds must span [0,%d], got %v", n, bounds)
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			return Partition{}, fmt.Errorf("partition: empty or inverted stage at bound %d: %v", i, bounds)
		}
	}
	return Partition{Bounds: append([]int(nil), bounds...)}, nil
}

// Stages returns the pipeline depth.
func (p Partition) Stages() int { return len(p.Bounds) - 1 }

// Stage returns the half-open block range [lo, hi) of stage i.
func (p Partition) Stage(i int) (lo, hi int) { return p.Bounds[i], p.Bounds[i+1] }

// Size returns the number of blocks in stage i.
func (p Partition) Size(i int) int { return p.Bounds[i+1] - p.Bounds[i] }

// Clone returns a deep copy.
func (p Partition) Clone() Partition {
	return Partition{Bounds: append([]int(nil), p.Bounds...)}
}

// Equal reports whether two partitions are identical.
func (p Partition) Equal(q Partition) bool {
	if len(p.Bounds) != len(q.Bounds) {
		return false
	}
	for i := range p.Bounds {
		if p.Bounds[i] != q.Bounds[i] {
			return false
		}
	}
	return true
}

// Key returns a compact string key for visited-set bookkeeping.
func (p Partition) Key() string {
	var sb strings.Builder
	for _, b := range p.Bounds {
		fmt.Fprintf(&sb, "%d,", b)
	}
	return sb.String()
}

// StageTimes returns the per-stage forward and backward times (the paper's
// f_x and b_x) of p over the block array.
func (p Partition) StageTimes(bl *model.Blocks) (f, b []float64) {
	s := p.Stages()
	f = make([]float64, s)
	b = make([]float64, s)
	for i := 0; i < s; i++ {
		for _, blk := range bl.List[p.Bounds[i]:p.Bounds[i+1]] {
			f[i] += blk.Fwd
			b[i] += blk.Bwd
		}
	}
	return f, b
}

// Profile bundles the partition's stage times with the block array's
// communication constant into the StageProfile consumed by the simulator,
// the Slicer, and the planner engine.
func (p Partition) Profile(bl *model.Blocks, micro int) sim.StageProfile {
	f, b := p.StageTimes(bl)
	return sim.StageProfile{Fwd: f, Bwd: b, Comm: bl.Comm, Micro: micro}
}

// StageWeights returns per-stage f+b compute weights.
func (p Partition) StageWeights(bl *model.Blocks) []float64 {
	f, b := p.StageTimes(bl)
	w := make([]float64, len(f))
	for i := range f {
		w[i] = f[i] + b[i]
	}
	return w
}

// StageParams returns the parameter count of each stage.
func (p Partition) StageParams(bl *model.Blocks) []int64 {
	s := p.Stages()
	out := make([]int64, s)
	for i := 0; i < s; i++ {
		for _, blk := range bl.List[p.Bounds[i]:p.Bounds[i+1]] {
			out[i] += blk.Params
		}
	}
	return out
}

// LayerCounts returns per-stage sizes in transformer-layer units (0.5 per
// sub-block), the representation of paper Table II.
func (p Partition) LayerCounts(bl *model.Blocks) []float64 {
	s := p.Stages()
	out := make([]float64, s)
	for i := 0; i < s; i++ {
		for _, blk := range bl.List[p.Bounds[i]:p.Bounds[i+1]] {
			out[i] += blk.LayerFraction()
		}
	}
	return out
}

// Imbalance returns the population standard deviation of per-stage f+b run
// times — the balance criterion of the paper's Fig. 13 (lower is better).
func (p Partition) Imbalance(bl *model.Blocks) float64 {
	w := p.StageWeights(bl)
	return StdDev(w)
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var mean float64
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	var v float64
	for _, x := range xs {
		d := x - mean
		v += d * d
	}
	return math.Sqrt(v / float64(len(xs)))
}

// String renders the partition as block bounds and layer counts.
func (p Partition) String() string {
	return fmt.Sprintf("Partition%v", p.Bounds)
}

// Describe renders a human-readable per-stage summary.
func (p Partition) Describe(bl *model.Blocks) string {
	f, b := p.StageTimes(bl)
	layers := p.LayerCounts(bl)
	params := p.StageParams(bl)
	var sb strings.Builder
	for i := 0; i < p.Stages(); i++ {
		fmt.Fprintf(&sb, "stage %d: blocks [%d,%d) layers=%.1f f=%.2fms b=%.2fms params=%.1fM\n",
			i, p.Bounds[i], p.Bounds[i+1], layers[i], f[i]*1e3, b[i]*1e3, float64(params[i])/1e6)
	}
	return sb.String()
}
