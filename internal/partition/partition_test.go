package partition

import (
	"math"
	"testing"
	"testing/quick"

	"autopipe/internal/config"
	"autopipe/internal/cost"
	"autopipe/internal/model"
)

func buildBlocks(t *testing.T) *model.Blocks {
	t.Helper()
	cl := config.DefaultCluster()
	bl, err := model.Build(config.GPT2_345M(), cost.Geometry{MicroBatch: 4, Checkpoint: true},
		cl.Device, cl.Network, model.SubLayer)
	if err != nil {
		t.Fatal(err)
	}
	return bl
}

func TestNewValidation(t *testing.T) {
	for _, tc := range []struct {
		bounds []int
		n      int
		ok     bool
	}{
		{[]int{0, 5, 10}, 10, true},
		{[]int{0, 10}, 10, true},
		{[]int{0}, 10, false},
		{[]int{1, 10}, 10, false},
		{[]int{0, 9}, 10, false},
		{[]int{0, 5, 5, 10}, 10, false},
		{[]int{0, 7, 3, 10}, 10, false},
	} {
		_, err := New(tc.bounds, tc.n)
		if (err == nil) != tc.ok {
			t.Errorf("New(%v, %d): err=%v, want ok=%v", tc.bounds, tc.n, err, tc.ok)
		}
	}
}

func TestBalanceMinimizesMaxStage(t *testing.T) {
	weights := []float64{5, 1, 1, 1, 1, 1, 5}
	part, err := Balance(weights, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Optimal max-stage weight is 5 (the heavy blocks isolated enough).
	maxStage := 0.0
	for s := 0; s < part.Stages(); s++ {
		lo, hi := part.Stage(s)
		var w float64
		for _, x := range weights[lo:hi] {
			w += x
		}
		if w > maxStage {
			maxStage = w
		}
	}
	if maxStage > 5+1e-9 {
		t.Errorf("Balance gave max stage %v, optimal is 5 (bounds %v)", maxStage, part.Bounds)
	}
}

func TestBalanceAgainstBruteForce(t *testing.T) {
	// Property: the DP's max-stage weight equals the brute-force optimum
	// over all contiguous partitions.
	prop := func(seed uint8, pRaw uint8) bool {
		rng := uint64(seed) + 1
		next := func() float64 {
			rng ^= rng << 13
			rng ^= rng >> 7
			rng ^= rng << 17
			return float64(rng%97) + 1
		}
		n := 5 + int(seed%6)
		weights := make([]float64, n)
		for i := range weights {
			weights[i] = next()
		}
		p := 2 + int(pRaw)%3
		if p > n {
			p = n
		}
		part, err := Balance(weights, p)
		if err != nil {
			return false
		}
		got := maxStageWeight(weights, part.Bounds)
		best := math.Inf(1)
		var enumerate func(bounds []int, pos int)
		enumerate = func(bounds []int, pos int) {
			if len(bounds) == p-1 {
				full := append(append([]int{0}, bounds...), n)
				if w := maxStageWeight(weights, full); w < best {
					best = w
				}
				return
			}
			for nxt := pos + 1; nxt <= n-(p-2-len(bounds))-1; nxt++ {
				enumerate(append(bounds, nxt), nxt)
			}
		}
		enumerate([]int{}, 0)
		return math.Abs(got-best) < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func maxStageWeight(weights []float64, bounds []int) float64 {
	var mx float64
	for i := 1; i < len(bounds); i++ {
		var w float64
		for _, x := range weights[bounds[i-1]:bounds[i]] {
			w += x
		}
		if w > mx {
			mx = w
		}
	}
	return mx
}

func TestBalanceErrors(t *testing.T) {
	if _, err := Balance([]float64{1, 2}, 0); err == nil {
		t.Error("want error for zero stages")
	}
	if _, err := Balance([]float64{1, 2}, 3); err == nil {
		t.Error("want error for more stages than blocks")
	}
	if _, err := Balance([]float64{1, -2, 3}, 2); err == nil {
		t.Error("want error for negative weight")
	}
}

func TestBalancePrefix(t *testing.T) {
	weights := []float64{4, 4, 4, 4, 4, 4, 4, 4}
	part, err := New([]int{0, 1, 4, 6, 8}, 8)
	if err != nil {
		t.Fatal(err)
	}
	reb, err := BalancePrefix(part, weights, 2)
	if err != nil {
		t.Fatal(err)
	}
	// First two stages cover blocks [0,4) and rebalance to 2+2.
	if reb.Bounds[1] != 2 {
		t.Errorf("BalancePrefix bounds = %v, want split at 2", reb.Bounds)
	}
	// Later bounds untouched.
	if reb.Bounds[2] != 4 || reb.Bounds[3] != 6 || reb.Bounds[4] != 8 {
		t.Errorf("BalancePrefix disturbed suffix: %v", reb.Bounds)
	}
	if _, err := BalancePrefix(part, weights, 0); err == nil {
		t.Error("want error for zero prefix stages")
	}
}

func TestEven(t *testing.T) {
	part, err := Even(12, 4)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 4; s++ {
		if part.Size(s) != 3 {
			t.Errorf("stage %d has %d blocks, want 3", s, part.Size(s))
		}
	}
	if _, err := Even(10, 4); err == nil {
		t.Error("want error for indivisible block count")
	}
}

func TestStageTimesAndParams(t *testing.T) {
	bl := buildBlocks(t)
	part, err := Balance(bl.Weights(), 4)
	if err != nil {
		t.Fatal(err)
	}
	f, b := part.StageTimes(bl)
	var totalF, totalB float64
	for i := range f {
		totalF += f[i]
		totalB += b[i]
		if f[i] <= 0 || b[i] <= 0 {
			t.Errorf("stage %d has non-positive times f=%v b=%v", i, f[i], b[i])
		}
	}
	if math.Abs(totalF-bl.TotalFwd()) > 1e-12*totalF {
		t.Errorf("stage forwards sum to %v, model total %v", totalF, bl.TotalFwd())
	}
	var params int64
	for _, p := range part.StageParams(bl) {
		params += p
	}
	if params != bl.TotalParams() {
		t.Errorf("stage params sum to %d, model total %d", params, bl.TotalParams())
	}
}

func TestLayerCountsSumToModelLayers(t *testing.T) {
	bl := buildBlocks(t)
	part, err := Balance(bl.Weights(), 4)
	if err != nil {
		t.Fatal(err)
	}
	var layers float64
	for _, l := range part.LayerCounts(bl) {
		layers += l
	}
	if layers != float64(bl.Model.Layers) {
		t.Errorf("layer counts sum to %v, want %d", layers, bl.Model.Layers)
	}
}

func TestImbalanceOfBalancedIsLow(t *testing.T) {
	bl := buildBlocks(t)
	balanced, _ := Balance(bl.Weights(), 4)
	skewed, _ := New([]int{0, 5, 10, 15, 50}, bl.Len())
	if balanced.Imbalance(bl) >= skewed.Imbalance(bl) {
		t.Errorf("balanced imbalance %v not below skewed %v", balanced.Imbalance(bl), skewed.Imbalance(bl))
	}
}

func TestStdDev(t *testing.T) {
	if s := StdDev(nil); s != 0 {
		t.Errorf("StdDev(nil) = %v", s)
	}
	if s := StdDev([]float64{3, 3, 3}); s != 0 {
		t.Errorf("StdDev(const) = %v", s)
	}
	if s := StdDev([]float64{1, 3}); math.Abs(s-1) > 1e-12 {
		t.Errorf("StdDev({1,3}) = %v, want 1", s)
	}
}

func TestCloneEqualKey(t *testing.T) {
	p, _ := New([]int{0, 3, 7}, 7)
	q := p.Clone()
	if !p.Equal(q) || p.Key() != q.Key() {
		t.Error("clone not equal to original")
	}
	q.Bounds[1] = 4
	if p.Equal(q) {
		t.Error("mutated clone still equal")
	}
	if p.Bounds[1] != 3 {
		t.Error("clone shares backing array with original")
	}
}
