package partition

import (
	"fmt"
	"math"
)

// Balance implements Algorithm 1 of the paper: given per-block weights
// (f_i + b_i) and a pipeline depth p, it returns the contiguous partition
// that minimizes the maximum per-stage weight, via the classic min-max
// linear-partition dynamic program.
//
//	time[i][j] = min over k<i of max(time[k][j-1], prefix[i]-prefix[k])
//
// The paper seeds its heuristic search with this "relatively balanced"
// scheme; it is only relatively balanced because block weights are lumpy
// (embedding and head blocks differ from transformer sub-blocks).
func Balance(weights []float64, p int) (Partition, error) {
	n := len(weights)
	if p <= 0 {
		return Partition{}, fmt.Errorf("partition: pipeline depth must be positive, got %d", p)
	}
	if n < p {
		return Partition{}, fmt.Errorf("partition: cannot split %d blocks into %d stages", n, p)
	}
	prefix := make([]float64, n+1)
	for i, w := range weights {
		if w < 0 {
			return Partition{}, fmt.Errorf("partition: negative block weight %g at index %d", w, i)
		}
		prefix[i+1] = prefix[i] + w
	}

	const inf = math.MaxFloat64
	// time[i][j]: best max-stage weight for the first i blocks in j stages.
	time := make([][]float64, n+1)
	from := make([][]int, n+1)
	for i := 0; i <= n; i++ {
		time[i] = make([]float64, p+1)
		from[i] = make([]int, p+1)
		for j := range time[i] {
			time[i][j] = inf
			from[i][j] = -1
		}
	}
	time[0][0] = 0
	for i := 1; i <= n; i++ {
		maxJ := p
		if i < maxJ {
			maxJ = i
		}
		for j := 1; j <= maxJ; j++ {
			// k is the end of the previous stage; stage j holds (k, i].
			for k := j - 1; k < i; k++ {
				if time[k][j-1] == inf {
					continue
				}
				cand := prefix[i] - prefix[k]
				if time[k][j-1] > cand {
					cand = time[k][j-1]
				}
				if cand < time[i][j] {
					time[i][j] = cand
					from[i][j] = k
				}
			}
		}
	}
	if time[n][p] == inf {
		return Partition{}, fmt.Errorf("partition: no feasible %d-stage partition of %d blocks", p, n)
	}

	bounds := make([]int, p+1)
	bounds[p] = n
	for j, i := p, n; j > 0; j-- {
		i = from[i][j]
		bounds[j-1] = i
	}
	return New(bounds, n)
}

// BalancePrefix re-balances only the first `stages` stages of part over the
// block prefix ending at part.Bounds[stages], leaving later bounds intact.
// The heuristic planner uses this when it shifts the master stage (paper
// §III-B step 3: "applies Algorithm 1 to the first i−1 stages").
func BalancePrefix(part Partition, weights []float64, stages int) (Partition, error) {
	if stages <= 0 || stages > part.Stages() {
		return Partition{}, fmt.Errorf("partition: prefix stages %d out of range [1,%d]", stages, part.Stages())
	}
	end := part.Bounds[stages]
	sub, err := Balance(weights[:end], stages)
	if err != nil {
		return Partition{}, err
	}
	out := part.Clone()
	copy(out.Bounds[:stages+1], sub.Bounds)
	return out, nil
}

// Even returns the Megatron-LM style partition: blocks split into p runs of
// equal block count (callers arrange the block array so this equals "divide
// transformer layers evenly"). It returns an error when p does not divide
// the divisible region evenly, mirroring Megatron's constraint that pipeline
// depth must be a factor of the layer count.
func Even(n, p int) (Partition, error) {
	if p <= 0 || n < p {
		return Partition{}, fmt.Errorf("partition: cannot evenly split %d blocks into %d stages", n, p)
	}
	if n%p != 0 {
		return Partition{}, fmt.Errorf("partition: %d blocks not divisible by %d stages", n, p)
	}
	bounds := make([]int, p+1)
	for i := 0; i <= p; i++ {
		bounds[i] = i * n / p
	}
	return New(bounds, n)
}
