// Package tensor provides the dense float64 tensors under the miniature
// training framework (packages nn and train) that stands in for the paper's
// PyTorch/Megatron-LM backend. It is written for numerical transparency, not
// speed: the semantic claims it supports — pipeline-parallel training is
// bit-compatible with serial training, micro-batch slicing does not change
// gradients — need exact, auditable arithmetic.
package tensor

import (
	"fmt"
	"math"
)

// Tensor is a dense row-major float64 tensor.
type Tensor struct {
	Shape []int
	Data  []float64
}

// New returns a zero tensor of the given shape.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d <= 0 {
			panic(fmt.Sprintf("tensor: non-positive dimension %d in %v", d, shape))
		}
		n *= d
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: make([]float64, n)}
}

// FromSlice wraps data in a tensor of the given shape (no copy).
func FromSlice(data []float64, shape ...int) *Tensor {
	t := &Tensor{Shape: append([]int(nil), shape...), Data: data}
	if len(data) != t.Size() {
		panic(fmt.Sprintf("tensor: %d elements cannot fill shape %v", len(data), shape))
	}
	return t
}

// Size returns the element count.
func (t *Tensor) Size() int {
	n := 1
	for _, d := range t.Shape {
		n *= d
	}
	return n
}

// Dim returns the length of axis i (negative i counts from the back).
func (t *Tensor) Dim(i int) int {
	if i < 0 {
		i += len(t.Shape)
	}
	return t.Shape[i]
}

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	out := New(t.Shape...)
	copy(out.Data, t.Data)
	return out
}

// Rows reinterprets the tensor as a [rows, cols] matrix where cols is the
// last dimension.
func (t *Tensor) Rows() (rows, cols int) {
	cols = t.Shape[len(t.Shape)-1]
	return t.Size() / cols, cols
}

// SameShape reports whether two tensors have identical shapes.
func (t *Tensor) SameShape(o *Tensor) bool {
	if len(t.Shape) != len(o.Shape) {
		return false
	}
	for i := range t.Shape {
		if t.Shape[i] != o.Shape[i] {
			return false
		}
	}
	return true
}

// Reshape returns a view with a new shape of equal size.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	out := &Tensor{Shape: append([]int(nil), shape...), Data: t.Data}
	if out.Size() != t.Size() {
		panic(fmt.Sprintf("tensor: cannot reshape %v to %v", t.Shape, shape))
	}
	return out
}

// Add returns t + o elementwise.
func (t *Tensor) Add(o *Tensor) *Tensor {
	mustSameShape("Add", t, o)
	out := t.Clone()
	for i, v := range o.Data {
		out.Data[i] += v
	}
	return out
}

// AddInPlace accumulates o into t.
func (t *Tensor) AddInPlace(o *Tensor) {
	mustSameShape("AddInPlace", t, o)
	for i, v := range o.Data {
		t.Data[i] += v
	}
}

// Scale returns t * s.
func (t *Tensor) Scale(s float64) *Tensor {
	out := t.Clone()
	for i := range out.Data {
		out.Data[i] *= s
	}
	return out
}

// ScaleInPlace multiplies t by s.
func (t *Tensor) ScaleInPlace(s float64) {
	for i := range t.Data {
		t.Data[i] *= s
	}
}

// Zero clears the tensor.
func (t *Tensor) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
}

// MatMul returns a @ b for 2-D matrices [m,k] x [k,n].
func MatMul(a, b *Tensor) *Tensor {
	if len(a.Shape) != 2 || len(b.Shape) != 2 || a.Shape[1] != b.Shape[0] {
		panic(fmt.Sprintf("tensor: MatMul shapes %v x %v", a.Shape, b.Shape))
	}
	m, k := a.Shape[0], a.Shape[1]
	n := b.Shape[1]
	out := New(m, n)
	for i := 0; i < m; i++ {
		arow := a.Data[i*k : (i+1)*k]
		orow := out.Data[i*n : (i+1)*n]
		for p := 0; p < k; p++ {
			av := arow[p]
			if av == 0 {
				continue
			}
			brow := b.Data[p*n : (p+1)*n]
			for j := 0; j < n; j++ {
				orow[j] += av * brow[j]
			}
		}
	}
	return out
}

// MatMulT1 returns aᵀ @ b for a [k,m], b [k,n] -> [m,n].
func MatMulT1(a, b *Tensor) *Tensor {
	if len(a.Shape) != 2 || len(b.Shape) != 2 || a.Shape[0] != b.Shape[0] {
		panic(fmt.Sprintf("tensor: MatMulT1 shapes %v x %v", a.Shape, b.Shape))
	}
	k, m := a.Shape[0], a.Shape[1]
	n := b.Shape[1]
	out := New(m, n)
	for p := 0; p < k; p++ {
		arow := a.Data[p*m : (p+1)*m]
		brow := b.Data[p*n : (p+1)*n]
		for i := 0; i < m; i++ {
			av := arow[i]
			if av == 0 {
				continue
			}
			orow := out.Data[i*n : (i+1)*n]
			for j := 0; j < n; j++ {
				orow[j] += av * brow[j]
			}
		}
	}
	return out
}

// MatMulT2 returns a @ bᵀ for a [m,k], b [n,k] -> [m,n].
func MatMulT2(a, b *Tensor) *Tensor {
	if len(a.Shape) != 2 || len(b.Shape) != 2 || a.Shape[1] != b.Shape[1] {
		panic(fmt.Sprintf("tensor: MatMulT2 shapes %v x %v", a.Shape, b.Shape))
	}
	m, k := a.Shape[0], a.Shape[1]
	n := b.Shape[0]
	out := New(m, n)
	for i := 0; i < m; i++ {
		arow := a.Data[i*k : (i+1)*k]
		orow := out.Data[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			brow := b.Data[j*k : (j+1)*k]
			var s float64
			for p := 0; p < k; p++ {
				s += arow[p] * brow[p]
			}
			orow[j] = s
		}
	}
	return out
}

// SplitRows returns the first n rows and the remainder of a tensor whose
// leading axis is the batch dimension.
func (t *Tensor) SplitRows(n int) (head, tail *Tensor) {
	b := t.Shape[0]
	if n <= 0 || n >= b {
		panic(fmt.Sprintf("tensor: SplitRows(%d) of batch %d", n, b))
	}
	rowSize := t.Size() / b
	headShape := append([]int{n}, t.Shape[1:]...)
	tailShape := append([]int{b - n}, t.Shape[1:]...)
	return FromSlice(t.Data[:n*rowSize], headShape...),
		FromSlice(t.Data[n*rowSize:], tailShape...)
}

// ConcatRows concatenates tensors along the leading (batch) axis.
func ConcatRows(parts ...*Tensor) *Tensor {
	if len(parts) == 0 {
		panic("tensor: ConcatRows of nothing")
	}
	total := 0
	for _, p := range parts {
		total += p.Shape[0]
	}
	shape := append([]int{total}, parts[0].Shape[1:]...)
	out := New(shape...)
	off := 0
	for _, p := range parts {
		copy(out.Data[off:], p.Data)
		off += p.Size()
	}
	return out
}

// MaxAbsDiff returns the largest absolute elementwise difference.
func MaxAbsDiff(a, b *Tensor) float64 {
	mustSameShape("MaxAbsDiff", a, b)
	var mx float64
	for i := range a.Data {
		if d := math.Abs(a.Data[i] - b.Data[i]); d > mx {
			mx = d
		}
	}
	return mx
}

func mustSameShape(op string, a, b *Tensor) {
	if !a.SameShape(b) {
		panic(fmt.Sprintf("tensor: %s shape mismatch %v vs %v", op, a.Shape, b.Shape))
	}
}

// RNG is a small deterministic generator (xorshift*) for reproducible
// initialization and synthetic data, independent of math/rand changes.
type RNG struct{ state uint64 }

// NewRNG seeds a generator (seed 0 is remapped).
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &RNG{state: seed}
}

// Uint64 returns the next raw value.
func (r *RNG) Uint64() uint64 {
	r.state ^= r.state >> 12
	r.state ^= r.state << 25
	r.state ^= r.state >> 27
	return r.state * 0x2545F4914F6CDD1D
}

// Float64 returns a uniform value in [0,1).
func (r *RNG) Float64() float64 { return float64(r.Uint64()>>11) / float64(1<<53) }

// Norm returns a standard normal value (Box-Muller).
func (r *RNG) Norm() float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Intn returns a uniform integer in [0,n).
func (r *RNG) Intn(n int) int { return int(r.Uint64() % uint64(n)) }

// Randn fills a new tensor with N(0, std²) values.
func Randn(rng *RNG, std float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.Data {
		t.Data[i] = rng.Norm() * std
	}
	return t
}
