package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewAndSize(t *testing.T) {
	x := New(2, 3, 4)
	if x.Size() != 24 || len(x.Data) != 24 {
		t.Errorf("size = %d", x.Size())
	}
	if x.Dim(0) != 2 || x.Dim(-1) != 4 {
		t.Errorf("dims = %d, %d", x.Dim(0), x.Dim(-1))
	}
	defer func() {
		if recover() == nil {
			t.Error("New accepted a non-positive dimension")
		}
	}()
	New(2, 0)
}

func TestFromSliceValidates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("FromSlice accepted a mismatched shape")
		}
	}()
	FromSlice([]float64{1, 2, 3}, 2, 2)
}

func TestMatMulKnownValues(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float64{7, 8, 9, 10, 11, 12}, 3, 2)
	c := MatMul(a, b)
	want := []float64{58, 64, 139, 154}
	for i, v := range want {
		if c.Data[i] != v {
			t.Errorf("MatMul[%d] = %v, want %v", i, c.Data[i], v)
		}
	}
}

func TestMatMulTransposesAgree(t *testing.T) {
	// Property: MatMulT1(a,b) == MatMul(aᵀ,b) and MatMulT2(a,b) == MatMul(a,bᵀ).
	prop := func(seed uint8) bool {
		rng := NewRNG(uint64(seed) + 1)
		a := Randn(rng, 1, 3, 4)
		b := Randn(rng, 1, 3, 5)
		at := New(4, 3)
		for i := 0; i < 3; i++ {
			for j := 0; j < 4; j++ {
				at.Data[j*3+i] = a.Data[i*4+j]
			}
		}
		x := MatMulT1(a, b) // aᵀ@b: [4,5]
		y := MatMul(at, b)
		if MaxAbsDiff(x, y) > 1e-12 {
			return false
		}
		c := Randn(rng, 1, 6, 4)
		bt2 := New(4, 6)
		for i := 0; i < 6; i++ {
			for j := 0; j < 4; j++ {
				bt2.Data[j*6+i] = c.Data[i*4+j]
			}
		}
		u := MatMulT2(a.Reshape(3, 4), c) // a@cᵀ: [3,6]
		v := MatMul(a.Reshape(3, 4), bt2)
		return MaxAbsDiff(u, v) <= 1e-12
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestMatMulShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MatMul accepted mismatched shapes")
		}
	}()
	MatMul(New(2, 3), New(4, 2))
}

func TestAddScaleClone(t *testing.T) {
	x := FromSlice([]float64{1, 2}, 2)
	y := FromSlice([]float64{10, 20}, 2)
	z := x.Add(y)
	if z.Data[0] != 11 || z.Data[1] != 22 {
		t.Errorf("Add = %v", z.Data)
	}
	if x.Data[0] != 1 {
		t.Error("Add mutated its receiver")
	}
	x.AddInPlace(y)
	if x.Data[0] != 11 {
		t.Error("AddInPlace did not mutate")
	}
	s := y.Scale(0.5)
	if s.Data[0] != 5 || y.Data[0] != 10 {
		t.Error("Scale wrong or mutated receiver")
	}
	c := y.Clone()
	c.Data[0] = 99
	if y.Data[0] != 10 {
		t.Error("Clone shares storage")
	}
	c.Zero()
	if c.Data[1] != 0 {
		t.Error("Zero did not clear")
	}
}

func TestSplitConcatRoundTrip(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3, 4, 5, 6, 7, 8}, 4, 2)
	a, b := x.SplitRows(1)
	if a.Shape[0] != 1 || b.Shape[0] != 3 {
		t.Fatalf("split shapes %v / %v", a.Shape, b.Shape)
	}
	back := ConcatRows(a, b)
	if MaxAbsDiff(back, x) != 0 {
		t.Error("split+concat is not the identity")
	}
	defer func() {
		if recover() == nil {
			t.Error("SplitRows accepted an out-of-range count")
		}
	}()
	x.SplitRows(4)
}

func TestReshapeIsView(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	y := x.Reshape(4)
	y.Data[0] = 42
	if x.Data[0] != 42 {
		t.Error("Reshape copied instead of aliasing")
	}
	defer func() {
		if recover() == nil {
			t.Error("Reshape accepted a size change")
		}
	}()
	x.Reshape(3)
}

func TestRNGDeterministicAndReasonable(t *testing.T) {
	a, b := NewRNG(5), NewRNG(5)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	// Norm samples have roughly zero mean and unit variance.
	rng := NewRNG(123)
	var sum, sq float64
	const n = 20000
	for i := 0; i < n; i++ {
		v := rng.Norm()
		sum += v
		sq += v * v
	}
	mean := sum / n
	variance := sq/n - mean*mean
	if math.Abs(mean) > 0.05 || math.Abs(variance-1) > 0.1 {
		t.Errorf("Norm stats: mean %.3f variance %.3f", mean, variance)
	}
	// Intn stays in range.
	for i := 0; i < 1000; i++ {
		if v := rng.Intn(7); v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
	}
	// Seed 0 is remapped, not degenerate.
	z := NewRNG(0)
	if z.Uint64() == 0 && z.Uint64() == 0 {
		t.Error("zero seed produced zeros")
	}
}

func TestRowsFlattening(t *testing.T) {
	x := New(2, 3, 5)
	r, c := x.Rows()
	if r != 6 || c != 5 {
		t.Errorf("Rows = %d x %d, want 6 x 5", r, c)
	}
}
