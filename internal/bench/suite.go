package bench

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"strings"
	"testing"

	"autopipe"
	"autopipe/internal/config"
	"autopipe/internal/exec"
	"autopipe/internal/obs"
	"autopipe/internal/schedule"
	"autopipe/internal/sim"
	"autopipe/internal/slicer"
)

// Benchmark is one suite entry: a function driven by testing.Benchmark plus
// an optional extractor that turns the obs registry's post-run snapshot into
// custom metrics for the baseline.
type Benchmark struct {
	// Name keys the entry in BENCH_*.json; compare matches entries by it.
	Name string
	// Bench runs the workload b.N times. The registry is reset before every
	// invocation, so after the final (measured) run it holds exactly that
	// run's counts.
	Bench func(b *testing.B, reg *obs.Registry)
	// Custom derives baseline metrics from the final run's registry snapshot
	// and the benchmark result; nil means no custom metrics.
	Custom func(snap obs.Snapshot, r testing.BenchmarkResult) map[string]float64
}

// Options configures a suite run.
type Options struct {
	// Parallelism is the planner worker-pool size for the plan-search entry
	// (0 = one worker per CPU), the same knob as the CLIs' -parallelism.
	Parallelism int
	// Ctx bounds the plan-search entry's planning calls, the same knob as
	// the CLIs' -timeout; nil means context.Background().
	Ctx context.Context
	// Match filters entries by name; nil runs the whole suite.
	Match func(name string) bool
	// Progress, when non-nil, receives one line per completed entry.
	Progress io.Writer
}

// DefaultSuite returns the curated hot-path suite: plan-search throughput,
// the sanitized exec event loop, schedule dependency-graph construction, the
// Slicer's Algorithm 2, and the obs registry's own overhead.
func DefaultSuite(ctx context.Context, parallelism int) []Benchmark {
	if ctx == nil {
		ctx = context.Background()
	}
	return []Benchmark{
		{
			// The paper's Fig. 12 metric: end-to-end plan search (Algorithm 1
			// seed, cooldown flattening, master moves, memory check, slicing)
			// for GPT-2 345M on 8 GPUs. The registry doubles as the planner
			// observer, so cache and pruning statistics ride along.
			Name: "planner/plan_gpt2_345m_g8",
			Bench: func(b *testing.B, reg *obs.Registry) {
				cluster := config.DefaultCluster()
				cluster.NumGPUs = 8
				run := config.Run{MicroBatch: 4, GlobalBatch: 128, Checkpoint: true}
				p := autopipe.NewPlanner(autopipe.WithParallelism(parallelism), autopipe.WithObserver(reg))
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, _, err := p.Plan(ctx, config.GPT2_345M(), run, cluster); err != nil {
						b.Fatal(err)
					}
				}
			},
			Custom: func(snap obs.Snapshot, r testing.BenchmarkResult) map[string]float64 {
				m := map[string]float64{}
				hits := snap.Counters["planner.engine.cache_hits"]
				misses := snap.Counters["planner.engine.cache_misses"]
				if hits+misses > 0 {
					m["cache_hit_ratio"] = hits / (hits + misses)
				}
				if n := float64(r.N); n > 0 {
					m["depths_pruned_per_plan"] = snap.Counters["planner.engine.depths_pruned"] / n
					m["candidates_per_plan"] = sumCounters(snap, "planner.p", ".candidates") / n
				}
				return m
			},
		},
		{
			// The executor's event loop with the happens-before sanitizer on —
			// the production -sanitize configuration — and the registry
			// attached but sinkless, so emission must cost nothing.
			Name: "exec/1f1b_p8_m32_sanitized",
			Bench: func(b *testing.B, reg *obs.Registry) {
				s, err := schedule.OneFOneB(8, 32)
				if err != nil {
					b.Fatal(err)
				}
				cfg := execCfg(8)
				cfg.Obs = reg
				cfg.Sanitize = true
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := exec.Run(s, cfg); err != nil {
						b.Fatal(err)
					}
				}
			},
			Custom: func(snap obs.Snapshot, r testing.BenchmarkResult) map[string]float64 {
				m := map[string]float64{}
				if secs := r.T.Seconds(); secs > 0 {
					m["ops_per_sec"] = snap.Counters["exec.ops"] / secs
				}
				if n := float64(r.N); n > 0 {
					m["ops_per_iter"] = snap.Counters["exec.ops"] / n
				}
				return m
			},
		},
		{
			// The same sanitized workload through a reused exec.Runner: the
			// steady-state regeneration path (soak loops, experiment sweeps).
			// After one warmup run every per-schedule cache is hot, and the
			// loop's allocsPerOp is pinned at 0 in the baseline — the hotalloc
			// analyzer's contract, enforced by measurement.
			Name: "exec/1f1b_p8_m32_reuse",
			Bench: func(b *testing.B, reg *obs.Registry) {
				s, err := schedule.OneFOneB(8, 32)
				if err != nil {
					b.Fatal(err)
				}
				cfg := execCfg(8)
				cfg.Obs = reg
				cfg.Sanitize = true
				r := exec.NewRunner()
				// Warmup: populate the validation, sanitizer, and scratch
				// caches — and the registry's metric entries — so the
				// measured iterations (CI runs -benchtime 1x) see only the
				// steady state.
				if _, err := r.Run(s, cfg); err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := r.Run(s, cfg); err != nil {
						b.Fatal(err)
					}
				}
			},
		},
		{
			// Dependency-model construction plus the Kahn check: the cost every
			// sanitized execution and every scheddata sweep pays per schedule.
			Name: "schedule/depgraph_1f1b_p16_m64",
			Bench: func(b *testing.B, reg *obs.Registry) {
				s, err := schedule.OneFOneB(16, 64)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				var ops int
				for i := 0; i < b.N; i++ {
					g, err := s.Dependencies()
					if err != nil {
						b.Fatal(err)
					}
					if err := g.Acyclic(); err != nil {
						b.Fatal(err)
					}
					ops = g.NumOps()
				}
				b.StopTimer()
				reg.Gauge("bench.graph_ops").Set(float64(ops))
			},
			Custom: func(snap obs.Snapshot, r testing.BenchmarkResult) map[string]float64 {
				return map[string]float64{"graph_ops": snap.Gauges["bench.graph_ops"]}
			},
		},
		{
			// Algorithm 2 at planner scale (16 stages, 256 micro-batches, an
			// unbalanced profile so the while loop iterates).
			Name: "slicer/solve_p16_m256",
			Bench: func(b *testing.B, reg *obs.Registry) {
				prof := slicerProfile(16, 256)
				b.ReportAllocs()
				b.ResetTimer()
				var plan slicer.Plan
				for i := 0; i < b.N; i++ {
					var err error
					if plan, err = slicer.SolveProfile(prof); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				reg.Gauge("bench.slicer_rounds").Set(float64(plan.Rounds))
				reg.Gauge("bench.slicer_num_sliced").Set(float64(plan.NumSliced))
			},
			Custom: func(snap obs.Snapshot, r testing.BenchmarkResult) map[string]float64 {
				return map[string]float64{
					"rounds":     snap.Gauges["bench.slicer_rounds"],
					"num_sliced": snap.Gauges["bench.slicer_num_sliced"],
				}
			},
		},
		{
			// Raw registry update cost: one counter bump plus one histogram
			// observation per op — what every exec.Run and engine wave pays.
			Name: "obs/registry_update",
			Bench: func(b *testing.B, reg *obs.Registry) {
				c := reg.Counter("bench.ops")
				h := reg.Histogram("bench.seconds")
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					c.Inc()
					h.Observe(float64(i&1023) * 1e-6)
				}
			},
		},
		{
			// The no-sink emission fast path; its allocsPerOp is pinned at 0
			// in the baseline, so any re-introduced allocation is a compare
			// regression, not just a lint finding.
			Name: "obs/emit_nosink",
			Bench: func(b *testing.B, reg *obs.Registry) {
				fields := obs.Fields{"device": 3, "seconds": 0.5}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					reg.Emit("bench.event", fields)
				}
			},
		},
	}
}

// execCfg is the executor suite configuration: distinct stage times, a real
// payload, finite bandwidth, kernel overhead — the same shape as the
// package-level executor benchmarks.
func execCfg(p int) exec.Config {
	fs := make([]float64, p)
	bs := make([]float64, p)
	for i := range fs {
		fs[i] = 0.010 + 0.001*float64(i%3)
		bs[i] = 2 * fs[i]
	}
	return exec.Config{
		VirtFwd: fs, VirtBwd: bs,
		CommBytes:      64 << 20,
		Network:        config.Network{Bandwidth: 25e9, Latency: 5e-6},
		KernelOverhead: 1e-5,
	}
}

// slicerProfile builds the unbalanced stage profile the slicer entry solves.
func slicerProfile(p, m int) sim.StageProfile {
	f := make([]float64, p)
	b := make([]float64, p)
	for i := range f {
		f[i] = 0.010 + 0.002*float64(i%4)
		b[i] = 2 * f[i]
	}
	return sim.StageProfile{Fwd: f, Bwd: b, Comm: 0.003, Micro: m}
}

// sumCounters sums every counter whose name starts with prefix and ends with
// suffix — e.g. the per-depth "planner.p<depth>.candidates" family.
func sumCounters(snap obs.Snapshot, prefix, suffix string) float64 {
	var total float64
	for name, v := range snap.Counters {
		if strings.HasPrefix(name, prefix) && strings.HasSuffix(name, suffix) {
			total += v
		}
	}
	return total
}

// RunSuite measures every matching suite entry and assembles the baseline.
// Each entry gets a fresh registry, reset again before every testing.B
// invocation so the final snapshot covers exactly the measured run.
func RunSuite(label string, opts Options) (*Baseline, error) {
	base := &Baseline{Label: label, Suite: SuiteID, GoVersion: runtime.Version()}
	for _, bm := range DefaultSuite(opts.Ctx, opts.Parallelism) {
		if opts.Match != nil && !opts.Match(bm.Name) {
			continue
		}
		reg := obs.NewRegistry()
		fn := bm.Bench
		r := testing.Benchmark(func(b *testing.B) {
			reg.Reset()
			fn(b, reg)
		})
		if r.N <= 0 {
			return nil, fmt.Errorf("bench: %s failed (see benchmark output above)", bm.Name)
		}
		e := Entry{
			Name:        bm.Name,
			Iters:       r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: float64(r.AllocsPerOp()),
			BytesPerOp:  float64(r.AllocedBytesPerOp()),
		}
		if bm.Custom != nil {
			if m := bm.Custom(reg.Snapshot(), r); len(m) > 0 {
				e.Custom = m
			}
		}
		base.Benchmarks = append(base.Benchmarks, e)
		if opts.Progress != nil {
			fmt.Fprintf(opts.Progress, "%-32s %12.0f ns/op %8.0f allocs/op %10.0f B/op  (%d iters)\n",
				e.Name, e.NsPerOp, e.AllocsPerOp, e.BytesPerOp, e.Iters)
		}
	}
	if len(base.Benchmarks) == 0 {
		return nil, fmt.Errorf("bench: no suite entries matched the filter")
	}
	if err := base.Validate(); err != nil {
		return nil, err
	}
	return base, nil
}
