package bench

import (
	"fmt"
	"io"
	"math"
	"strings"

	"autopipe/internal/errdefs"
)

// Thresholds sets the per-metric regression gates for Compare. A lower-is-
// better metric regresses when new > old*(1+Pct) + Abs; a higher-is-better
// metric when new < old*(1-Pct) - Abs. The absolute slack keeps tiny
// baselines (a 2 ns registry op, a 0-alloc fast path) from tripping on
// measurement noise while still catching real drift.
type Thresholds struct {
	NsPct, NsAbs         float64
	AllocsPct, AllocsAbs float64
	BytesPct, BytesAbs   float64
	// CustomPct gates the directional custom metrics (cache_hit_ratio,
	// ops_per_sec); non-directional custom metrics are reported, not gated.
	CustomPct float64
}

// DefaultThresholds are deliberately loose on wall-clock (shared CI runners
// jitter) and tight on allocation counts (deterministic in Go): +30% ns/op,
// +10% allocs/op with half-an-alloc slack, +25% B/op.
func DefaultThresholds() Thresholds {
	return Thresholds{
		NsPct: 0.30, NsAbs: 50,
		AllocsPct: 0.10, AllocsAbs: 0.5,
		BytesPct: 0.25, BytesAbs: 64,
		CustomPct: 0.25,
	}
}

// customDirection classifies a custom metric: +1 when higher is better, -1
// when lower is better, 0 when it is an informational anchor (exact counts
// like candidates_per_plan or graph_ops, reported but never gated).
func customDirection(name string) int {
	switch {
	case name == "cache_hit_ratio", strings.HasSuffix(name, "_per_sec"):
		return +1
	default:
		return 0
	}
}

// Delta is one metric's old-vs-new comparison.
type Delta struct {
	// Bench and Metric name the comparison ("exec/1f1b_p8_m32_sanitized",
	// "nsPerOp" or a custom metric name).
	Bench  string
	Metric string
	Old    float64
	New    float64
	// Regressed reports that the change crossed the metric's threshold in
	// the bad direction.
	Regressed bool
	// Info marks a non-gated metric (informational custom anchors).
	Info bool
}

// Pct returns the relative change in percent (positive = increased), or 0
// when the old value is 0.
func (d Delta) Pct() float64 {
	if d.Old == 0 {
		return 0
	}
	return 100 * (d.New - d.Old) / d.Old
}

// Report is the outcome of comparing two baselines.
type Report struct {
	OldLabel, NewLabel string
	Deltas             []Delta
	// MissingInNew lists benchmarks present only in the old baseline (a
	// shrunk suite); AddedInNew the converse. Neither gates by itself, but
	// both are printed so a silently dropped benchmark is visible.
	MissingInNew []string
	AddedInNew   []string
}

// Regressions returns the deltas that crossed their thresholds.
func (r *Report) Regressions() []Delta {
	var out []Delta
	for _, d := range r.Deltas {
		if d.Regressed {
			out = append(out, d)
		}
	}
	return out
}

// Compare diffs two baselines metric by metric under the given thresholds.
// Baselines from different suite versions refuse to compare (wrapping
// errdefs.ErrBadConfig): the entries would not be measuring the same thing.
func Compare(old, new *Baseline, th Thresholds) (*Report, error) {
	if old.Suite != new.Suite {
		return nil, fmt.Errorf("%w: bench: cannot compare suite %q against %q — refresh the baseline",
			errdefs.ErrBadConfig, old.Suite, new.Suite)
	}
	rep := &Report{OldLabel: old.Label, NewLabel: new.Label}
	seen := make(map[string]bool, len(old.Benchmarks))
	for _, oe := range old.Benchmarks {
		seen[oe.Name] = true
		ne := new.Entry(oe.Name)
		if ne == nil {
			rep.MissingInNew = append(rep.MissingInNew, oe.Name)
			continue
		}
		rep.Deltas = append(rep.Deltas,
			lowerBetter(oe.Name, "nsPerOp", oe.NsPerOp, ne.NsPerOp, th.NsPct, th.NsAbs),
			lowerBetter(oe.Name, "allocsPerOp", oe.AllocsPerOp, ne.AllocsPerOp, th.AllocsPct, th.AllocsAbs),
			lowerBetter(oe.Name, "bytesPerOp", oe.BytesPerOp, ne.BytesPerOp, th.BytesPct, th.BytesAbs),
		)
		for _, name := range sortedMetricNames(oe.Custom) {
			ov := oe.Custom[name]
			nv, ok := ne.Custom[name]
			if !ok {
				rep.Deltas = append(rep.Deltas, Delta{Bench: oe.Name, Metric: name, Old: ov, New: math.NaN(), Info: true})
				continue
			}
			switch customDirection(name) {
			case +1:
				d := Delta{Bench: oe.Name, Metric: name, Old: ov, New: nv}
				d.Regressed = nv < ov*(1-th.CustomPct)
				rep.Deltas = append(rep.Deltas, d)
			default:
				rep.Deltas = append(rep.Deltas, Delta{Bench: oe.Name, Metric: name, Old: ov, New: nv, Info: true})
			}
		}
	}
	for _, ne := range new.Benchmarks {
		if !seen[ne.Name] {
			rep.AddedInNew = append(rep.AddedInNew, ne.Name)
		}
	}
	return rep, nil
}

func lowerBetter(bench, metric string, old, new, pct, abs float64) Delta {
	return Delta{
		Bench: bench, Metric: metric, Old: old, New: new,
		Regressed: new > old*(1+pct)+abs,
	}
}

func sortedMetricNames(m map[string]float64) []string {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	// Insertion sort: the maps hold a handful of metrics, and keeping the
	// output deterministic matters more than asymptotics.
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	return names
}

// Format writes the human-readable comparison: one line per metric with the
// relative change, regressions marked, then the suite-shape differences and
// a verdict line.
func (r *Report) Format(w io.Writer) {
	fmt.Fprintf(w, "comparing %q (old) vs %q (new)\n", r.OldLabel, r.NewLabel)
	for _, d := range r.Deltas {
		mark := " "
		switch {
		case d.Regressed:
			mark = "✗"
		case d.Info:
			mark = "·"
		}
		if math.IsNaN(d.New) {
			fmt.Fprintf(w, "  %s %-34s %-24s %14.4g -> (missing)\n", mark, d.Bench, d.Metric, d.Old)
			continue
		}
		fmt.Fprintf(w, "  %s %-34s %-24s %14.4g -> %-14.4g %+7.1f%%\n", mark, d.Bench, d.Metric, d.Old, d.New, d.Pct())
	}
	for _, name := range r.MissingInNew {
		fmt.Fprintf(w, "  ! %s: present in old baseline only\n", name)
	}
	for _, name := range r.AddedInNew {
		fmt.Fprintf(w, "  + %s: new benchmark (no old baseline)\n", name)
	}
	if reg := r.Regressions(); len(reg) > 0 {
		fmt.Fprintf(w, "REGRESSED: %d metric(s) past threshold\n", len(reg))
	} else {
		fmt.Fprintln(w, "OK: no metric past threshold")
	}
}
