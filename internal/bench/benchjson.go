// Package bench is the performance-observability harness behind
// cmd/autopipebench: a curated suite of hot-path benchmarks (plan search,
// the sanitized exec event loop, schedule dependency-graph construction, the
// Slicer, and the obs registry itself) run through testing.Benchmark, a
// canonical BENCH_<label>.json baseline format, and a regression-gating
// comparator with per-metric thresholds.
//
// The paper's headline planner claim is search *speed* (Fig. 12), so the
// repository pins a measured trajectory: BENCH_baseline.json is checked in,
// `autopipebench` refreshes it, and `autopipebench compare` diffs two
// baselines and exits nonzero when a metric degrades past its threshold.
// Baselines parse strictly (json.Decoder.DisallowUnknownFields), and the
// scheddata testdata sweep validates every checked-in BENCH_*.json the same
// way it validates schedule and fault-plan goldens.
package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"strings"

	"autopipe/internal/errdefs"
)

// SuiteID identifies the baseline schema plus the suite contract; compare
// refuses to diff baselines from different suite versions, so a schema change
// bumps this and forces a baseline refresh.
const SuiteID = "autopipebench/1"

// Entry is one benchmark's measured result.
type Entry struct {
	// Name identifies the suite entry ("exec/1f1b_p8_m32_sanitized").
	Name string `json:"name"`
	// Iters is the iteration count of the measured run (testing.B.N).
	Iters int `json:"iters"`
	// NsPerOp, AllocsPerOp, and BytesPerOp are the standard Go benchmark
	// metrics, as floats so thresholds compose uniformly.
	NsPerOp     float64 `json:"nsPerOp"`
	AllocsPerOp float64 `json:"allocsPerOp"`
	BytesPerOp  float64 `json:"bytesPerOp"`
	// Custom holds suite-specific metrics pulled from the obs registry after
	// the measured run: cache-hit ratios, pruned-depth counts, executor
	// ops/sec, graph sizes.
	Custom map[string]float64 `json:"custom,omitempty"`
}

// Baseline is the canonical BENCH_<label>.json document.
type Baseline struct {
	// Label names the baseline ("baseline", "ci", "dev").
	Label string `json:"label"`
	// Suite is the schema/suite version tag; always SuiteID when written by
	// this package.
	Suite string `json:"suite"`
	// GoVersion records the toolchain that produced the numbers.
	GoVersion string `json:"goVersion"`
	// Benchmarks holds one entry per suite benchmark, in suite order.
	Benchmarks []Entry `json:"benchmarks"`
}

// ParseBaseline decodes and validates a BENCH_*.json document. Unknown fields
// fail the parse (DisallowUnknownFields — the scheddata discipline: a typo in
// a checked-in baseline must not silently become a missing metric), as do a
// missing label, a foreign suite tag, duplicate or empty entry names,
// non-positive iteration counts, and non-finite or negative measurements.
// Errors wrap errdefs.ErrBadConfig.
func ParseBaseline(data []byte) (*Baseline, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var b Baseline
	if err := dec.Decode(&b); err != nil {
		return nil, fmt.Errorf("%w: bench: malformed baseline: %v", errdefs.ErrBadConfig, err)
	}
	if dec.More() {
		return nil, fmt.Errorf("%w: bench: trailing data after baseline document", errdefs.ErrBadConfig)
	}
	if err := b.Validate(); err != nil {
		return nil, err
	}
	return &b, nil
}

// LoadBaseline reads and parses the baseline at path.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("bench: %w", err)
	}
	b, err := ParseBaseline(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return b, nil
}

// Validate reports the first structural problem with the baseline.
func (b *Baseline) Validate() error {
	if b.Label == "" {
		return fmt.Errorf("%w: bench: baseline has no label", errdefs.ErrBadConfig)
	}
	if !strings.HasPrefix(b.Suite, "autopipebench/") {
		return fmt.Errorf("%w: bench: unknown suite tag %q (want %q)", errdefs.ErrBadConfig, b.Suite, SuiteID)
	}
	if len(b.Benchmarks) == 0 {
		return fmt.Errorf("%w: bench: baseline %q has no benchmarks", errdefs.ErrBadConfig, b.Label)
	}
	seen := make(map[string]bool, len(b.Benchmarks))
	for i, e := range b.Benchmarks {
		if e.Name == "" {
			return fmt.Errorf("%w: bench: entry %d has no name", errdefs.ErrBadConfig, i)
		}
		if seen[e.Name] {
			return fmt.Errorf("%w: bench: duplicate entry %q", errdefs.ErrBadConfig, e.Name)
		}
		seen[e.Name] = true
		if e.Iters <= 0 {
			return fmt.Errorf("%w: bench: entry %q has non-positive iters %d", errdefs.ErrBadConfig, e.Name, e.Iters)
		}
		for metric, v := range map[string]float64{"nsPerOp": e.NsPerOp, "allocsPerOp": e.AllocsPerOp, "bytesPerOp": e.BytesPerOp} {
			if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("%w: bench: entry %q has invalid %s %g", errdefs.ErrBadConfig, e.Name, metric, v)
			}
		}
		for name, v := range e.Custom {
			if name == "" {
				return fmt.Errorf("%w: bench: entry %q has an unnamed custom metric", errdefs.ErrBadConfig, e.Name)
			}
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("%w: bench: entry %q custom metric %q is not finite", errdefs.ErrBadConfig, e.Name, name)
			}
		}
	}
	return nil
}

// Entry returns the named entry, or nil.
func (b *Baseline) Entry(name string) *Entry {
	for i := range b.Benchmarks {
		if b.Benchmarks[i].Name == name {
			return &b.Benchmarks[i]
		}
	}
	return nil
}

// Encode renders the baseline as indented JSON with a trailing newline — the
// canonical on-disk form of BENCH_<label>.json.
func (b *Baseline) Encode() ([]byte, error) {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("bench: encode baseline: %w", err)
	}
	return append(data, '\n'), nil
}

// WriteFile writes the canonical encoding to path.
func (b *Baseline) WriteFile(path string) error {
	data, err := b.Encode()
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("bench: %w", err)
	}
	return nil
}
