package bench

import (
	"errors"
	"flag"
	"math"
	"path/filepath"
	"strings"
	"testing"

	"autopipe/internal/errdefs"
)

func validBaseline() *Baseline {
	return &Baseline{
		Label:     "test",
		Suite:     SuiteID,
		GoVersion: "go1.22",
		Benchmarks: []Entry{
			{
				Name: "obs/registry_update", Iters: 100, NsPerOp: 50, AllocsPerOp: 0, BytesPerOp: 0,
			},
			{
				Name: "planner/plan_gpt2_345m_g8", Iters: 10, NsPerOp: 2e6, AllocsPerOp: 900, BytesPerOp: 65536,
				Custom: map[string]float64{"cache_hit_ratio": 0.8, "candidates_per_plan": 120},
			},
		},
	}
}

func TestEncodeParseRoundTrip(t *testing.T) {
	b := validBaseline()
	data, err := b.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if data[len(data)-1] != '\n' {
		t.Error("Encode output missing trailing newline")
	}
	got, err := ParseBaseline(data)
	if err != nil {
		t.Fatalf("ParseBaseline: %v", err)
	}
	if got.Label != b.Label || got.Suite != b.Suite || len(got.Benchmarks) != len(b.Benchmarks) {
		t.Errorf("round trip mismatch: got %+v", got)
	}
	if got.Benchmarks[1].Custom["cache_hit_ratio"] != 0.8 {
		t.Errorf("custom metric lost in round trip: %+v", got.Benchmarks[1].Custom)
	}
}

func TestParseBaselineRejects(t *testing.T) {
	cases := []struct {
		name string
		json string
	}{
		{"unknown field", `{"label":"x","suite":"autopipebench/1","goVersion":"go1.22","benchmarks":[{"name":"a","iters":1,"nsPerOp":1,"allocsPerOp":0,"bytesPerOp":0}],"extra":1}`},
		{"unknown entry field", `{"label":"x","suite":"autopipebench/1","goVersion":"go1.22","benchmarks":[{"name":"a","iters":1,"nsPerOp":1,"allocsPerOp":0,"bytesPerOp":0,"wat":2}]}`},
		{"trailing data", `{"label":"x","suite":"autopipebench/1","goVersion":"go1.22","benchmarks":[{"name":"a","iters":1,"nsPerOp":1,"allocsPerOp":0,"bytesPerOp":0}]} {}`},
		{"no label", `{"label":"","suite":"autopipebench/1","goVersion":"go1.22","benchmarks":[{"name":"a","iters":1,"nsPerOp":1,"allocsPerOp":0,"bytesPerOp":0}]}`},
		{"foreign suite", `{"label":"x","suite":"otherbench/1","goVersion":"go1.22","benchmarks":[{"name":"a","iters":1,"nsPerOp":1,"allocsPerOp":0,"bytesPerOp":0}]}`},
		{"no benchmarks", `{"label":"x","suite":"autopipebench/1","goVersion":"go1.22","benchmarks":[]}`},
		{"duplicate name", `{"label":"x","suite":"autopipebench/1","goVersion":"go1.22","benchmarks":[{"name":"a","iters":1,"nsPerOp":1,"allocsPerOp":0,"bytesPerOp":0},{"name":"a","iters":1,"nsPerOp":1,"allocsPerOp":0,"bytesPerOp":0}]}`},
		{"zero iters", `{"label":"x","suite":"autopipebench/1","goVersion":"go1.22","benchmarks":[{"name":"a","iters":0,"nsPerOp":1,"allocsPerOp":0,"bytesPerOp":0}]}`},
		{"negative nsPerOp", `{"label":"x","suite":"autopipebench/1","goVersion":"go1.22","benchmarks":[{"name":"a","iters":1,"nsPerOp":-1,"allocsPerOp":0,"bytesPerOp":0}]}`},
		{"not json", `bench: 12 ns/op`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseBaseline([]byte(tc.json))
			if err == nil {
				t.Fatalf("ParseBaseline accepted %s", tc.name)
			}
			if !errors.Is(err, errdefs.ErrBadConfig) {
				t.Errorf("error does not wrap ErrBadConfig: %v", err)
			}
		})
	}
}

func TestValidateRejectsNonFiniteCustom(t *testing.T) {
	b := validBaseline()
	b.Benchmarks[1].Custom["bad"] = math.NaN()
	if err := b.Validate(); !errors.Is(err, errdefs.ErrBadConfig) {
		t.Errorf("NaN custom metric not rejected: %v", err)
	}
}

func TestLoadBaselineFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	if err := validBaseline().WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Label != "test" {
		t.Errorf("Label = %q, want test", got.Label)
	}
	if _, err := LoadBaseline(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("LoadBaseline on missing file succeeded")
	}
}

func TestCompareSelfIsClean(t *testing.T) {
	b := validBaseline()
	rep, err := Compare(b, b, DefaultThresholds())
	if err != nil {
		t.Fatal(err)
	}
	if reg := rep.Regressions(); len(reg) != 0 {
		t.Errorf("self-compare regressed: %+v", reg)
	}
	if len(rep.MissingInNew) != 0 || len(rep.AddedInNew) != 0 {
		t.Errorf("self-compare reported shape drift: %+v / %+v", rep.MissingInNew, rep.AddedInNew)
	}
}

func TestCompareFlagsRegressions(t *testing.T) {
	old := validBaseline()
	th := DefaultThresholds()

	fresh := func() *Baseline {
		data, err := old.Encode()
		if err != nil {
			t.Fatal(err)
		}
		b, err := ParseBaseline(data)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}

	t.Run("ns regression past pct+abs", func(t *testing.T) {
		nb := fresh()
		nb.Benchmarks[1].NsPerOp = old.Benchmarks[1].NsPerOp * 1.5
		rep, err := Compare(old, nb, th)
		if err != nil {
			t.Fatal(err)
		}
		reg := rep.Regressions()
		if len(reg) != 1 || reg[0].Metric != "nsPerOp" || reg[0].Bench != "planner/plan_gpt2_345m_g8" {
			t.Errorf("Regressions() = %+v, want single planner nsPerOp", reg)
		}
	})

	t.Run("abs slack shields tiny values", func(t *testing.T) {
		nb := fresh()
		// 50 -> 90 ns is +80% but within the 50 ns absolute slack.
		nb.Benchmarks[0].NsPerOp = 90
		rep, err := Compare(old, nb, th)
		if err != nil {
			t.Fatal(err)
		}
		if reg := rep.Regressions(); len(reg) != 0 {
			t.Errorf("tiny absolute increase flagged: %+v", reg)
		}
	})

	t.Run("alloc creep past half-alloc slack", func(t *testing.T) {
		nb := fresh()
		// 0 -> 1 alloc/op clears old*(1+0.10)+0.5 = 0.5.
		nb.Benchmarks[0].AllocsPerOp = 1
		rep, err := Compare(old, nb, th)
		if err != nil {
			t.Fatal(err)
		}
		reg := rep.Regressions()
		if len(reg) != 1 || reg[0].Metric != "allocsPerOp" {
			t.Errorf("Regressions() = %+v, want single allocsPerOp", reg)
		}
	})

	t.Run("higher-better custom drop", func(t *testing.T) {
		nb := fresh()
		// cache_hit_ratio 0.8 -> 0.5 is below 0.8*(1-0.25) = 0.6.
		nb.Benchmarks[1].Custom["cache_hit_ratio"] = 0.5
		rep, err := Compare(old, nb, th)
		if err != nil {
			t.Fatal(err)
		}
		reg := rep.Regressions()
		if len(reg) != 1 || reg[0].Metric != "cache_hit_ratio" {
			t.Errorf("Regressions() = %+v, want single cache_hit_ratio", reg)
		}
	})

	t.Run("informational custom never gates", func(t *testing.T) {
		nb := fresh()
		nb.Benchmarks[1].Custom["candidates_per_plan"] = 10 * old.Benchmarks[1].Custom["candidates_per_plan"]
		rep, err := Compare(old, nb, th)
		if err != nil {
			t.Fatal(err)
		}
		if reg := rep.Regressions(); len(reg) != 0 {
			t.Errorf("informational metric gated: %+v", reg)
		}
	})

	t.Run("shape drift reported", func(t *testing.T) {
		nb := fresh()
		nb.Benchmarks[0].Name = "obs/renamed"
		rep, err := Compare(old, nb, th)
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.MissingInNew) != 1 || rep.MissingInNew[0] != "obs/registry_update" {
			t.Errorf("MissingInNew = %+v", rep.MissingInNew)
		}
		if len(rep.AddedInNew) != 1 || rep.AddedInNew[0] != "obs/renamed" {
			t.Errorf("AddedInNew = %+v", rep.AddedInNew)
		}
		if reg := rep.Regressions(); len(reg) != 0 {
			t.Errorf("shape drift alone gated: %+v", reg)
		}
	})

	t.Run("foreign suite refuses", func(t *testing.T) {
		nb := fresh()
		nb.Suite = "autopipebench/2"
		if _, err := Compare(old, nb, th); !errors.Is(err, errdefs.ErrBadConfig) {
			t.Errorf("cross-suite compare error = %v, want ErrBadConfig", err)
		}
	})
}

func TestReportFormat(t *testing.T) {
	old := validBaseline()
	data, err := old.Encode()
	if err != nil {
		t.Fatal(err)
	}
	nb, err := ParseBaseline(data)
	if err != nil {
		t.Fatal(err)
	}
	nb.Benchmarks[1].NsPerOp *= 2
	rep, err := Compare(old, nb, DefaultThresholds())
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	rep.Format(&sb)
	out := sb.String()
	if !strings.Contains(out, "REGRESSED: 1 metric(s) past threshold") {
		t.Errorf("Format missing verdict line:\n%s", out)
	}
	if !strings.Contains(out, "✗") || !strings.Contains(out, "nsPerOp") {
		t.Errorf("Format missing regression marker:\n%s", out)
	}
}

// TestRunSuiteSmoke runs the two cheap registry entries for one iteration and
// checks the assembled baseline validates, self-compares clean, and pins the
// no-sink emission path at zero allocations.
func TestRunSuiteSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("suite smoke needs testing.Benchmark")
	}
	setBenchtime(t, "1x")
	base, err := RunSuite("smoke", Options{
		Match: func(name string) bool { return strings.HasPrefix(name, "obs/") },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Benchmarks) != 2 {
		t.Fatalf("suite ran %d entries, want 2 obs entries", len(base.Benchmarks))
	}
	if e := base.Entry("obs/emit_nosink"); e == nil {
		t.Error("obs/emit_nosink missing from baseline")
	} else if e.AllocsPerOp != 0 {
		t.Errorf("emit_nosink allocates %g/op, want 0", e.AllocsPerOp)
	}
	rep, err := Compare(base, base, DefaultThresholds())
	if err != nil {
		t.Fatal(err)
	}
	if reg := rep.Regressions(); len(reg) != 0 {
		t.Errorf("fresh baseline self-compare regressed: %+v", reg)
	}
}

func TestRunSuiteNoMatch(t *testing.T) {
	if _, err := RunSuite("none", Options{Match: func(string) bool { return false }}); err == nil {
		t.Error("RunSuite with empty filter succeeded")
	}
}

// setBenchtime points testing.Benchmark at a short benchtime for the duration
// of the test — the same mechanism cmd/autopipebench uses.
func setBenchtime(t *testing.T, v string) {
	t.Helper()
	f := flag.CommandLine.Lookup("test.benchtime")
	if f == nil {
		t.Fatal("test.benchtime flag not registered")
	}
	prev := f.Value.String()
	if err := f.Value.Set(v); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = f.Value.Set(prev) })
}
