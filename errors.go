package autopipe

import "autopipe/internal/errdefs"

// Sentinel errors returned (wrapped) by the planning and evaluation APIs.
// Match them with errors.Is:
//
//	if _, _, err := planner.Plan(ctx, model, run, cluster); errors.Is(err, autopipe.ErrInfeasible) {
//	    // no partition of this model fits device memory at this micro-batch
//	}
var (
	// ErrBadConfig marks a structurally invalid model, run, or cluster
	// configuration — non-positive micro-batch, a global batch the
	// micro-batch does not divide, heads not dividing hidden, and so on.
	ErrBadConfig = errdefs.ErrBadConfig
	// ErrInfeasible marks a planning problem with no feasible answer: no
	// pipeline depth yields a partition that fits device memory.
	ErrInfeasible = errdefs.ErrInfeasible
	// ErrOOM marks an evaluated plan that exceeded device memory on the
	// discrete-event executor (EvalResult.Failure wraps it).
	ErrOOM = errdefs.ErrOOM
	// ErrDeadlock marks a structurally corrupted schedule whose stages wait
	// on each other forever on the discrete-event executor.
	ErrDeadlock = errdefs.ErrDeadlock
	// ErrDeviceLost marks the permanent loss of a device during execution
	// (a fault-plan crash); recovery is checkpoint → replan → resume.
	ErrDeviceLost = errdefs.ErrDeviceLost
	// ErrLinkDown marks a permanently failed interconnect link.
	ErrLinkDown = errdefs.ErrLinkDown
	// ErrTransient marks a retryable communication failure (a dropped
	// message under fault injection).
	ErrTransient = errdefs.ErrTransient
	// ErrInternal marks a violated internal invariant — most prominently a
	// runtime-sanitizer finding (an op that started before its schedule
	// dependencies completed, an oversubscribed link, a negative activation
	// ledger). Never retried: it is a bug, not a fault.
	ErrInternal = errdefs.ErrInternal
)
