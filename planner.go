package autopipe

import (
	"context"

	"autopipe/internal/core"
	"autopipe/internal/obs"
	"autopipe/internal/sim"
	"autopipe/internal/slicer"
)

// StageProfile bundles the per-stage forward/backward times, the
// communication constant, and the micro-batch count — the quadruple that the
// simulator, the Slicer, and the planner engine all consume. It replaces the
// positional (f, b []float64, comm float64, micro int) signatures of the
// earlier API.
type StageProfile = sim.StageProfile

// PlanResult is the outcome of a fixed-depth partition search: the best
// candidate with its simulation, the Algorithm 1 seed, and the search
// telemetry.
type PlanResult = core.PlanResult

// Registry collects metrics (counters, gauges, histograms); pass one to a
// Planner via WithObserver to receive search telemetry.
type Registry = obs.Registry

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry { return obs.NewRegistry() }

// Planner is the AutoPipe planning engine: balanced sub-layer partitioning
// (Algorithm 1 seed plus heuristic master-stage refinement), analytic 1F1B
// simulation of every candidate, and warmup micro-batch slicing
// (Algorithm 2). The zero value — NewPlanner() — searches with one worker
// per CPU and no budget; a Planner is immutable after construction and safe
// for concurrent use.
//
// The plan-space search fans out across pipeline depths and candidate
// partitions on a worker pool, but its result is deterministic: the same
// inputs yield byte-identical plans at every parallelism setting.
type Planner struct {
	opts core.Options
}

// PlannerOption configures a Planner at construction.
type PlannerOption func(*Planner)

// WithParallelism sets the worker-pool size for candidate evaluation; n <= 0
// means one worker per CPU. Parallelism changes only planning speed, never
// the plan.
func WithParallelism(n int) PlannerOption {
	return func(p *Planner) { p.opts.Parallelism = n }
}

// WithObserver directs search telemetry (per-depth candidate counts,
// convergence curves, phase timings, cache statistics) into reg.
func WithObserver(reg *Registry) PlannerOption {
	return func(p *Planner) { p.opts.Obs = reg }
}

// WithSearchBudget caps the number of distinct candidate partitions the
// search may simulate (0 = unlimited). A truncated search still returns the
// best plan found, deterministically.
func WithSearchBudget(candidates int) PlannerOption {
	return func(p *Planner) { p.opts.Budget = candidates }
}

// NewPlanner builds a Planner from options.
func NewPlanner(options ...PlannerOption) *Planner {
	p := &Planner{}
	for _, opt := range options {
		opt(p)
	}
	return p
}

// Plan runs the full AutoPipe pipeline for a model on a cluster: choose a
// pipeline depth and a balanced sub-layer partition, then solve the warmup
// micro-batch slicing. The returned Blocks is the block array the plan's
// partition indexes (needed by Evaluate).
//
// Plan validates run up front (wrapping ErrBadConfig), returns ErrInfeasible
// when no partition fits device memory, and honors ctx cancellation and
// deadlines.
func (p *Planner) Plan(ctx context.Context, m Model, run Run, cluster Cluster) (*Spec, *Blocks, error) {
	return core.PlanClusterOpts(ctx, m, run, cluster, p.opts)
}

// PlanDepth runs the heuristic partition search at a fixed pipeline depth
// with micro micro-batches per iteration.
func (p *Planner) PlanDepth(ctx context.Context, bl *Blocks, depth, micro int) (*PlanResult, error) {
	return core.PlanDepthOpts(ctx, bl, depth, micro, p.opts)
}

// Profile returns the stage profile of a partition over a block array — the
// bridge from a planned partition to SimulateProfile and SliceProfile.
func Profile(part Partition, bl *Blocks, micro int) StageProfile {
	return part.Profile(bl, micro)
}

// SimulateProfile runs the paper's analytic pipeline simulator on a stage
// profile.
func SimulateProfile(p StageProfile) (*SimResult, error) {
	return sim.SimulateProfile(p)
}

// SliceProfile solves Algorithm 2 on a stage profile: the number of leading
// micro-batches whose forwards should be split in half to hide the pipeline
// startup overhead.
func SliceProfile(p StageProfile) (SlicePlan, error) {
	return slicer.SolveProfile(p)
}
