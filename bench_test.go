// Benchmarks that regenerate every table and figure of the paper's
// evaluation (one benchmark per table/figure; see DESIGN.md §5 for the
// mapping). Custom metrics report the headline quantity of each experiment
// so `go test -bench=. -benchmem` prints the reproduced results alongside
// the harness cost.
package autopipe_test

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"autopipe"
	"autopipe/internal/config"
	"autopipe/internal/experiments"
)

func env() experiments.Env { return experiments.DefaultEnv() }

// BenchmarkTable1Models regenerates Table I (benchmark model inventory).
func BenchmarkTable1Models(b *testing.B) {
	e := env()
	for i := 0; i < b.N; i++ {
		if _, err := e.Table1(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2Partitions regenerates Table II (the seven GPT-2 345M
// partition schemes) via the analytic simulator.
func BenchmarkTable2Partitions(b *testing.B) {
	e := env()
	for i := 0; i < b.N; i++ {
		if _, err := e.Table2(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig9IterTimeVsMicroBatch regenerates Fig. 9 (iteration time vs
// micro-batch size, 4 stages) and reports AutoPipe's best speedup.
func BenchmarkFig9IterTimeVsMicroBatch(b *testing.B) {
	e := env()
	var best float64
	for i := 0; i < b.N; i++ {
		points, _, err := e.Fig9()
		if err != nil {
			b.Fatal(err)
		}
		best = 0
		for _, p := range points {
			m, a := p.Results[experiments.SeriesMegatron], p.Results[experiments.SeriesAutoPipe]
			if !m.OOM && !a.OOM && a.IterTime > 0 {
				if s := m.IterTime / a.IterTime; s > best {
					best = s
				}
			}
		}
	}
	b.ReportMetric(best, "max-speedup")
}

// BenchmarkFig10IterTimeVsDepth regenerates Fig. 10 (iteration time vs
// pipeline depth) and reports AutoPipe's best speedup (the paper's 1.30x
// headline comes from this sweep).
func BenchmarkFig10IterTimeVsDepth(b *testing.B) {
	e := env()
	var best float64
	for i := 0; i < b.N; i++ {
		points, _, err := e.Fig10()
		if err != nil {
			b.Fatal(err)
		}
		best = 0
		for _, p := range points {
			m, a := p.Results[experiments.SeriesMegatron], p.Results[experiments.SeriesAutoPipe]
			if !m.OOM && !a.OOM && a.IterTime > 0 {
				if s := m.IterTime / a.IterTime; s > best {
					best = s
				}
			}
		}
	}
	b.ReportMetric(best, "max-speedup")
}

// BenchmarkFig11SimulatorAccuracy regenerates Fig. 11 (simulator vs actual)
// and reports the mean relative gap.
func BenchmarkFig11SimulatorAccuracy(b *testing.B) {
	e := env()
	var gap float64
	for i := 0; i < b.N; i++ {
		points, _, err := e.Fig11()
		if err != nil {
			b.Fatal(err)
		}
		gap = 0
		for _, p := range points {
			gap += (p.Actual - p.Simulated) / p.Simulated
		}
		gap /= float64(len(points))
	}
	b.ReportMetric(100*gap, "mean-gap-%")
}

// BenchmarkTable3LowMemory regenerates Table III (planner comparison, low
// memory demand).
func BenchmarkTable3LowMemory(b *testing.B) {
	e := env()
	for i := 0; i < b.N; i++ {
		if _, _, err := e.Table3(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable4HighMemory regenerates Table IV (planner comparison, high
// memory demand).
func BenchmarkTable4HighMemory(b *testing.B) {
	e := env()
	for i := 0; i < b.N; i++ {
		if _, _, err := e.Table4(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig12SearchTime regenerates Fig. 12 (planner search time) and
// reports the DAPPLE/AutoPipe and Piper/AutoPipe time ratios on GPT-2 345M.
func BenchmarkFig12SearchTime(b *testing.B) {
	e := env()
	var dRatio, pRatio float64
	for i := 0; i < b.N; i++ {
		points, _, err := e.Fig12()
		if err != nil {
			b.Fatal(err)
		}
		times := map[string]float64{}
		for _, p := range points {
			if p.Model == "GPT-2 345M" {
				times[p.Planner] = p.Search.Seconds()
			}
		}
		dRatio = times["DAPPLE"] / times["AutoPipe"]
		pRatio = times["Piper"] / times["AutoPipe"]
	}
	b.ReportMetric(dRatio, "dapple/autopipe")
	b.ReportMetric(pRatio, "piper/autopipe")
}

// BenchmarkFig13Balance regenerates Fig. 13 (pipeline balance) and reports
// the worst-case balance improvement of AutoPipe.
func BenchmarkFig13Balance(b *testing.B) {
	e := env()
	var improvement float64
	for i := 0; i < b.N; i++ {
		points, _, err := e.Fig13()
		if err != nil {
			b.Fatal(err)
		}
		auto := map[int]float64{}
		for _, p := range points {
			if p.Planner == "AutoPipe" {
				auto[p.GPUs] = p.StdDev
			}
		}
		improvement = 0
		for _, p := range points {
			if p.Planner != "AutoPipe" && auto[p.GPUs] > 0 {
				if r := p.StdDev / auto[p.GPUs]; r > improvement {
					improvement = r
				}
			}
		}
	}
	b.ReportMetric(improvement, "max-balance-x")
}

// BenchmarkFig14aStartupVsMicroBatch regenerates Fig. 14(a) and reports the
// Slicer's startup reduction at micro-batch 4.
func BenchmarkFig14aStartupVsMicroBatch(b *testing.B) {
	e := env()
	var reduction float64
	for i := 0; i < b.N; i++ {
		points, _, err := e.Fig14a()
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range points {
			if p.Mbs == 4 {
				reduction = p.Results[experiments.SeriesMegatron].Startup /
					p.Results[experiments.SeriesSlicer].Startup
			}
		}
	}
	b.ReportMetric(reduction, "startup-reduction-x")
}

// BenchmarkFig14bStartupVsDepth regenerates Fig. 14(b).
func BenchmarkFig14bStartupVsDepth(b *testing.B) {
	e := env()
	for i := 0; i < b.N; i++ {
		if _, _, err := e.Fig14b(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlannerGPT2_345M measures the AutoPipe planner itself at the
// paper's most common configuration (not a paper figure; a harness-level
// sanity benchmark).
func BenchmarkPlannerGPT2_345M(b *testing.B) {
	cluster := config.DefaultCluster()
	cluster.NumGPUs = 4
	run := config.Run{MicroBatch: 4, GlobalBatch: 128, Checkpoint: true}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := autopipe.Plan(config.GPT2_345M(), run, cluster); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlanParallel measures the parallel plan-space search engine on
// the heaviest zoo configuration (GPT-2 1.3B across 16 GPUs at a large
// global batch, where the depth-16 search with 256 micro-batches dominates).
// The sub-benchmarks share one workload; the parent verifies — outside the
// timed region — that the sequential and parallel engines return identical
// Specs, the engine's core contract. The wall-clock ratio between the
// parallelism=1 and parallelism=8 lines is the engine's speedup; it needs
// spare CPU cores to materialize (on a single-core host the engine disables
// speculation and the lines should simply stay close).
func BenchmarkPlanParallel(b *testing.B) {
	model := config.GPT2_1_3B()
	cluster := config.DefaultCluster()
	run := config.Run{MicroBatch: 16, GlobalBatch: 4096, Checkpoint: true}

	planWith := func(workers int) *autopipe.Spec {
		p := autopipe.NewPlanner(autopipe.WithParallelism(workers))
		spec, _, err := p.Plan(context.Background(), model, run, cluster)
		if err != nil {
			b.Fatal(err)
		}
		return spec
	}

	seq, par := planWith(1), planWith(8)
	seq.SearchTime, par.SearchTime = 0, 0
	if !reflect.DeepEqual(seq, par) {
		b.Fatalf("parallel plan differs from sequential:\n%+v\nvs\n%+v", par, seq)
	}

	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("parallelism=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				planWith(workers)
			}
		})
	}
}
