package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"

	"autopipe"
)

// Client talks to an autopiped daemon. The zero value is not usable; call
// New. A Client is immutable after construction and safe for concurrent use
// (it holds no per-request state), mirroring the Planner's contract.
type Client struct {
	base    string
	hc      *http.Client
	retries int
	backoff time.Duration
	budget  int
	// sleep is swapped out by tests so retry/backoff runs instantly.
	sleep func(ctx context.Context, d time.Duration) error
}

// Option configures a Client at construction, in the same functional-option
// style as autopipe.NewPlanner.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (connection pools,
// TLS, proxies). The default is a client with a 60s overall timeout.
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) { c.hc = hc }
}

// WithRetries sets how many times a failed request is retried (default 2,
// so up to 3 attempts). Only transport errors and retryable statuses —
// 503 unavailable and 5xx — are retried; a typed 4xx/422 rejection is final.
func WithRetries(n int) Option {
	return func(c *Client) {
		if n >= 0 {
			c.retries = n
		}
	}
}

// WithBackoff sets the base retry backoff (default 100ms). Attempt k sleeps
// base<<k, capped at 5s; the sleep is cut short by context cancellation.
func WithBackoff(base time.Duration) Option {
	return func(c *Client) {
		if base > 0 {
			c.backoff = base
		}
	}
}

// WithTimeout bounds each HTTP attempt (not the whole retry loop — bound
// that with the caller's context). It replaces the http.Client timeout.
func WithTimeout(d time.Duration) Option {
	return func(c *Client) {
		hc := *c.hc
		hc.Timeout = d
		c.hc = &hc
	}
}

// WithSearchBudget caps the candidate partitions the daemon's search may
// simulate on this client's plan jobs (0 = unlimited), mirroring
// autopipe.WithSearchBudget. The budget is part of the plan's cache key.
func WithSearchBudget(candidates int) Option {
	return func(c *Client) { c.budget = candidates }
}

// New returns a Client for the daemon at baseURL (e.g.
// "http://127.0.0.1:7433"). The URL must be absolute; a trailing slash is
// trimmed. Errors wrap autopipe.ErrBadConfig.
func New(baseURL string, opts ...Option) (*Client, error) {
	u, err := url.Parse(baseURL)
	if err != nil {
		return nil, fmt.Errorf("%w: client: bad base URL %q: %v", autopipe.ErrBadConfig, baseURL, err)
	}
	if u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("%w: client: base URL %q must be absolute (http://host:port)", autopipe.ErrBadConfig, baseURL)
	}
	c := &Client{
		base:    strings.TrimRight(baseURL, "/"),
		hc:      &http.Client{Timeout: 60 * time.Second},
		retries: 2,
		backoff: 100 * time.Millisecond,
		sleep:   sleepCtx,
	}
	for _, opt := range opts {
		opt(c)
	}
	return c, nil
}

// Plan submits a plan job and waits for its result: the daemon-side
// equivalent of autopipe.NewPlanner(...).Plan. The returned Job carries the
// cache metadata (Key, CacheHit, Shared); the block array is rebuilt locally
// with autopipe.Build when needed. Failures are errors.Is-compatible with
// the in-process sentinels.
func (c *Client) Plan(ctx context.Context, m autopipe.Model, run autopipe.Run, cluster autopipe.Cluster) (*autopipe.Spec, *Job, error) {
	job, err := c.Submit(ctx, SubmitRequest{
		Kind: KindPlan,
		Plan: &PlanPayload{Model: m, Run: run, Cluster: cluster, Budget: c.budget},
	})
	if err != nil {
		return nil, job, err
	}
	var res PlanResult
	if err := json.Unmarshal(job.Result, &res); err != nil {
		return nil, job, fmt.Errorf("%w: client: undecodable plan result: %v", autopipe.ErrInternal, err)
	}
	return res.Spec, job, nil
}

// Simulate runs the analytic 1F1B simulator on the daemon, the remote
// counterpart of autopipe.SimulateProfile.
func (c *Client) Simulate(ctx context.Context, p autopipe.StageProfile) (*SimulateResult, error) {
	job, err := c.Submit(ctx, SubmitRequest{Kind: KindSimulate, Profile: &p})
	if err != nil {
		return nil, err
	}
	var res SimulateResult
	if err := json.Unmarshal(job.Result, &res); err != nil {
		return nil, fmt.Errorf("%w: client: undecodable simulate result: %v", autopipe.ErrInternal, err)
	}
	return &res, nil
}

// Slice solves Algorithm 2 on the daemon, the remote counterpart of
// autopipe.SliceProfile.
func (c *Client) Slice(ctx context.Context, p autopipe.StageProfile) (autopipe.SlicePlan, error) {
	job, err := c.Submit(ctx, SubmitRequest{Kind: KindSlice, Profile: &p})
	if err != nil {
		return autopipe.SlicePlan{}, err
	}
	var res SliceResult
	if err := json.Unmarshal(job.Result, &res); err != nil {
		return autopipe.SlicePlan{}, fmt.Errorf("%w: client: undecodable slice result: %v", autopipe.ErrInternal, err)
	}
	return res.Plan, nil
}

// Submit posts a job and blocks until it reaches a terminal state (the
// daemon holds the request open). A failed job is returned as its typed
// error alongside the job document.
func (c *Client) Submit(ctx context.Context, req SubmitRequest) (*Job, error) {
	job, err := c.postJob(ctx, req, true)
	if err != nil {
		return job, err
	}
	if err := job.Err(); err != nil {
		return job, err
	}
	if !job.Terminal() {
		return job, fmt.Errorf("%w: client: daemon returned non-terminal job %s from a waited submit", autopipe.ErrInternal, job.ID)
	}
	return job, nil
}

// SubmitAsync posts a job and returns immediately with its pending/running
// document; poll it with Job or block with Wait.
func (c *Client) SubmitAsync(ctx context.Context, req SubmitRequest) (*Job, error) {
	return c.postJob(ctx, req, false)
}

// Job fetches the current state of a job by ID.
func (c *Client) Job(ctx context.Context, id string) (*Job, error) {
	return c.getJob(ctx, id, false)
}

// Wait blocks until the job reaches a terminal state and returns it. Like
// Submit, a failed job surfaces as its typed error.
func (c *Client) Wait(ctx context.Context, id string) (*Job, error) {
	job, err := c.getJob(ctx, id, true)
	if err != nil {
		return job, err
	}
	return job, job.Err()
}

// Jobs lists every job the daemon knows about, oldest first.
func (c *Client) Jobs(ctx context.Context) ([]*Job, error) {
	var jobs []*Job
	if err := c.do(ctx, http.MethodGet, "/v1/jobs", nil, &jobs); err != nil {
		return nil, err
	}
	return jobs, nil
}

// Metrics scrapes the daemon's /metrics endpoint and returns the Prometheus
// text exposition verbatim.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	body, _, err := c.roundTrip(ctx, http.MethodGet, "/metrics", nil)
	if err != nil {
		return "", err
	}
	return string(body), nil
}

func (c *Client) postJob(ctx context.Context, req SubmitRequest, wait bool) (*Job, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	path := "/v1/jobs"
	if wait {
		path += "?wait=1"
	}
	var job Job
	if err := c.do(ctx, http.MethodPost, path, &req, &job); err != nil {
		return nil, err
	}
	return &job, nil
}

func (c *Client) getJob(ctx context.Context, id string, wait bool) (*Job, error) {
	if id == "" {
		return nil, fmt.Errorf("%w: client: empty job id", autopipe.ErrBadConfig)
	}
	path := "/v1/jobs/" + url.PathEscape(id)
	if wait {
		path += "?wait=1"
	}
	var job Job
	if err := c.do(ctx, http.MethodGet, path, nil, &job); err != nil {
		return nil, err
	}
	return &job, nil
}

// do performs one API call with retries and decodes the JSON response into
// out (which may be nil).
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body []byte
	if in != nil {
		var err error
		body, err = json.Marshal(in)
		if err != nil {
			return fmt.Errorf("%w: client: encode request: %v", autopipe.ErrBadConfig, err)
		}
	}
	respBody, _, err := c.roundTrip(ctx, method, path, body)
	if err != nil {
		return err
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(respBody, out); err != nil {
		return fmt.Errorf("%w: client: undecodable response from %s: %v", autopipe.ErrInternal, path, err)
	}
	return nil
}

// roundTrip sends the request, retrying transport errors and retryable
// statuses with exponential backoff. Non-2xx responses decode into a typed
// *Error; a response that fails to decode becomes an ErrInternal-wrapped
// error carrying the status.
func (c *Client) roundTrip(ctx context.Context, method, path string, body []byte) ([]byte, int, error) {
	var lastErr error
	for attempt := 0; ; attempt++ {
		data, status, err := c.once(ctx, method, path, body)
		switch {
		case err == nil:
			return data, status, nil
		case !retryable(err) || attempt >= c.retries:
			return nil, status, err
		}
		lastErr = err
		d := c.backoff << attempt
		if limit := 5 * time.Second; d > limit {
			d = limit
		}
		if err := c.sleep(ctx, d); err != nil {
			return nil, 0, fmt.Errorf("client: retry canceled after %v: %w", lastErr, err)
		}
	}
}

func (c *Client) once(ctx context.Context, method, path string, body []byte) ([]byte, int, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return nil, 0, fmt.Errorf("%w: client: build request: %v", autopipe.ErrBadConfig, err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		// Transport errors (refused connection, reset, client timeout) are
		// retryable by classification below.
		return nil, 0, fmt.Errorf("client: %s %s: %w: %v", method, path, ErrUnavailable, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, resp.StatusCode, fmt.Errorf("client: read response: %w: %v", ErrUnavailable, err)
	}
	if resp.StatusCode >= 200 && resp.StatusCode < 300 {
		return data, resp.StatusCode, nil
	}
	return nil, resp.StatusCode, decodeError(data, resp.StatusCode)
}

// decodeError turns a non-2xx body into a typed error. The daemon always
// sends {"error": {code, message}}; anything else (a proxy's HTML 502, a
// truncated body) maps onto unavailable for 5xx and internal otherwise.
func decodeError(data []byte, status int) error {
	var doc struct {
		Error *Error `json:"error"`
	}
	if err := json.Unmarshal(data, &doc); err == nil && doc.Error != nil && doc.Error.Code != "" {
		return doc.Error
	}
	if status >= 500 {
		return fmt.Errorf("client: HTTP %d: %w", status, ErrUnavailable)
	}
	return fmt.Errorf("%w: client: HTTP %d: %s", autopipe.ErrInternal, status, truncate(data, 200))
}

// retryable reports whether the failed attempt is worth repeating: transient
// daemon conditions only. Typed rejections (bad config, infeasible, OOM) and
// terminal failures are final on the first response.
func retryable(err error) bool {
	var we *Error
	if errors.As(err, &we) {
		return we.Code == CodeUnavailable
	}
	return errors.Is(err, ErrUnavailable)
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

func truncate(b []byte, n int) string {
	if len(b) <= n {
		return string(b)
	}
	return string(b[:n]) + "..."
}
