package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"autopipe"
)

// Client talks to an autopiped daemon. The zero value is not usable; call
// New. A Client's configuration is immutable after construction and it is
// safe for concurrent use; its only mutable state is the circuit breaker's
// failure count, which is internally synchronized.
type Client struct {
	base       string
	hc         *http.Client
	retries    int
	backoff    time.Duration
	maxBackoff time.Duration
	budget     int
	// sleep is swapped out by tests so retry/backoff runs instantly.
	sleep func(ctx context.Context, d time.Duration) error
	// jitter returns a uniform sample in [0,1); tests pin it.
	jitter func() float64
	// now is the breaker's clock; tests advance it by hand.
	now func() time.Time

	// Circuit breaker: after brThreshold consecutive unavailable-class call
	// failures, calls fail fast with ErrCircuitOpen until brCooldown passes;
	// the first call after the cooldown is the probe that closes or reopens
	// it. brThreshold 0 disables the breaker.
	brThreshold int
	brCooldown  time.Duration
	brMu        sync.Mutex
	brFails     int
	brOpenUntil time.Time
}

// Option configures a Client at construction, in the same functional-option
// style as autopipe.NewPlanner.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (connection pools,
// TLS, proxies). The default is a client with a 60s overall timeout.
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) { c.hc = hc }
}

// WithRetries sets how many times a failed request is retried (default 2,
// so up to 3 attempts). Only transport errors and retryable statuses —
// 429 rate-limited, 503 unavailable, and bare 5xx — are retried; a typed
// 4xx/422 rejection is final.
func WithRetries(n int) Option {
	return func(c *Client) {
		if n >= 0 {
			c.retries = n
		}
	}
}

// WithBackoff sets the base retry backoff (default 100ms). Attempt k sleeps
// a full-jitter fraction of min(base<<k, max backoff) — uniform in
// (0, base<<k] — so a fleet of clients hammering a recovering daemon spreads
// out instead of thundering in lockstep. A server-sent Retry-After larger
// than the jittered value wins (still subject to the cap), and the sleep is
// cut short by context cancellation.
func WithBackoff(base time.Duration) Option {
	return func(c *Client) {
		if base > 0 {
			c.backoff = base
		}
	}
}

// WithMaxBackoff caps every retry sleep, jittered or server-directed
// (default 5s).
func WithMaxBackoff(max time.Duration) Option {
	return func(c *Client) {
		if max > 0 {
			c.maxBackoff = max
		}
	}
}

// WithCircuitBreaker tunes the client's failure-rate circuit breaker: after
// failures consecutive calls end in an unavailable-class error (transport
// failure, 503, bare 5xx — not typed rejections, not 429), subsequent calls
// fail fast with ErrCircuitOpen for the cooldown, then a single probe call
// decides whether to close or reopen. The default is 5 failures with a 1s
// cooldown; failures <= 0 disables the breaker entirely.
func WithCircuitBreaker(failures int, cooldown time.Duration) Option {
	return func(c *Client) {
		c.brThreshold = failures
		if cooldown > 0 {
			c.brCooldown = cooldown
		}
	}
}

// WithTimeout bounds each HTTP attempt (not the whole retry loop — bound
// that with the caller's context). It replaces the http.Client timeout.
func WithTimeout(d time.Duration) Option {
	return func(c *Client) {
		hc := *c.hc
		hc.Timeout = d
		c.hc = &hc
	}
}

// WithSearchBudget caps the candidate partitions the daemon's search may
// simulate on this client's plan jobs (0 = unlimited), mirroring
// autopipe.WithSearchBudget. The budget is part of the plan's cache key.
func WithSearchBudget(candidates int) Option {
	return func(c *Client) { c.budget = candidates }
}

// New returns a Client for the daemon at baseURL (e.g.
// "http://127.0.0.1:7433"). The URL must be absolute; a trailing slash is
// trimmed. Errors wrap autopipe.ErrBadConfig.
func New(baseURL string, opts ...Option) (*Client, error) {
	u, err := url.Parse(baseURL)
	if err != nil {
		return nil, fmt.Errorf("%w: client: bad base URL %q: %v", autopipe.ErrBadConfig, baseURL, err)
	}
	if u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("%w: client: base URL %q must be absolute (http://host:port)", autopipe.ErrBadConfig, baseURL)
	}
	c := &Client{
		base:        strings.TrimRight(baseURL, "/"),
		hc:          &http.Client{Timeout: 60 * time.Second},
		retries:     2,
		backoff:     100 * time.Millisecond,
		maxBackoff:  5 * time.Second,
		sleep:       sleepCtx,
		jitter:      rand.Float64,
		now:         time.Now,
		brThreshold: 5,
		brCooldown:  time.Second,
	}
	for _, opt := range opts {
		opt(c)
	}
	return c, nil
}

// Plan submits a plan job and waits for its result: the daemon-side
// equivalent of autopipe.NewPlanner(...).Plan. The returned Job carries the
// cache metadata (Key, CacheHit, Shared); the block array is rebuilt locally
// with autopipe.Build when needed. Failures are errors.Is-compatible with
// the in-process sentinels.
func (c *Client) Plan(ctx context.Context, m autopipe.Model, run autopipe.Run, cluster autopipe.Cluster) (*autopipe.Spec, *Job, error) {
	job, err := c.Submit(ctx, SubmitRequest{
		Kind: KindPlan,
		Plan: &PlanPayload{Model: m, Run: run, Cluster: cluster, Budget: c.budget},
	})
	if err != nil {
		return nil, job, err
	}
	var res PlanResult
	if err := json.Unmarshal(job.Result, &res); err != nil {
		return nil, job, fmt.Errorf("%w: client: undecodable plan result: %v", autopipe.ErrInternal, err)
	}
	return res.Spec, job, nil
}

// Simulate runs the analytic 1F1B simulator on the daemon, the remote
// counterpart of autopipe.SimulateProfile.
func (c *Client) Simulate(ctx context.Context, p autopipe.StageProfile) (*SimulateResult, error) {
	job, err := c.Submit(ctx, SubmitRequest{Kind: KindSimulate, Profile: &p})
	if err != nil {
		return nil, err
	}
	var res SimulateResult
	if err := json.Unmarshal(job.Result, &res); err != nil {
		return nil, fmt.Errorf("%w: client: undecodable simulate result: %v", autopipe.ErrInternal, err)
	}
	return &res, nil
}

// Slice solves Algorithm 2 on the daemon, the remote counterpart of
// autopipe.SliceProfile.
func (c *Client) Slice(ctx context.Context, p autopipe.StageProfile) (autopipe.SlicePlan, error) {
	job, err := c.Submit(ctx, SubmitRequest{Kind: KindSlice, Profile: &p})
	if err != nil {
		return autopipe.SlicePlan{}, err
	}
	var res SliceResult
	if err := json.Unmarshal(job.Result, &res); err != nil {
		return autopipe.SlicePlan{}, fmt.Errorf("%w: client: undecodable slice result: %v", autopipe.ErrInternal, err)
	}
	return res.Plan, nil
}

// Submit posts a job and blocks until it reaches a terminal state (the
// daemon holds the request open). A failed job is returned as its typed
// error alongside the job document.
func (c *Client) Submit(ctx context.Context, req SubmitRequest) (*Job, error) {
	job, err := c.postJob(ctx, req, true)
	if err != nil {
		return job, err
	}
	if err := job.Err(); err != nil {
		return job, err
	}
	if !job.Terminal() {
		return job, fmt.Errorf("%w: client: daemon returned non-terminal job %s from a waited submit", autopipe.ErrInternal, job.ID)
	}
	return job, nil
}

// SubmitAsync posts a job and returns immediately with its pending/running
// document; poll it with Job or block with Wait.
func (c *Client) SubmitAsync(ctx context.Context, req SubmitRequest) (*Job, error) {
	return c.postJob(ctx, req, false)
}

// Job fetches the current state of a job by ID.
func (c *Client) Job(ctx context.Context, id string) (*Job, error) {
	return c.getJob(ctx, id, false)
}

// Wait blocks until the job reaches a terminal state and returns it. Like
// Submit, a failed job surfaces as its typed error.
func (c *Client) Wait(ctx context.Context, id string) (*Job, error) {
	job, err := c.getJob(ctx, id, true)
	if err != nil {
		return job, err
	}
	return job, job.Err()
}

// Jobs lists every job the daemon knows about, oldest first.
func (c *Client) Jobs(ctx context.Context) ([]*Job, error) {
	var jobs []*Job
	if err := c.do(ctx, http.MethodGet, "/v1/jobs", nil, &jobs); err != nil {
		return nil, err
	}
	return jobs, nil
}

// Metrics scrapes the daemon's /metrics endpoint and returns the Prometheus
// text exposition verbatim.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	body, _, err := c.roundTrip(ctx, http.MethodGet, "/metrics", nil)
	if err != nil {
		return "", err
	}
	return string(body), nil
}

func (c *Client) postJob(ctx context.Context, req SubmitRequest, wait bool) (*Job, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	path := "/v1/jobs"
	if wait {
		path += "?wait=1"
	}
	var job Job
	if err := c.do(ctx, http.MethodPost, path, &req, &job); err != nil {
		return nil, err
	}
	return &job, nil
}

func (c *Client) getJob(ctx context.Context, id string, wait bool) (*Job, error) {
	if id == "" {
		return nil, fmt.Errorf("%w: client: empty job id", autopipe.ErrBadConfig)
	}
	path := "/v1/jobs/" + url.PathEscape(id)
	if wait {
		path += "?wait=1"
	}
	var job Job
	if err := c.do(ctx, http.MethodGet, path, nil, &job); err != nil {
		return nil, err
	}
	return &job, nil
}

// do performs one API call with retries and decodes the JSON response into
// out (which may be nil).
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body []byte
	if in != nil {
		var err error
		body, err = json.Marshal(in)
		if err != nil {
			return fmt.Errorf("%w: client: encode request: %v", autopipe.ErrBadConfig, err)
		}
	}
	respBody, _, err := c.roundTrip(ctx, method, path, body)
	if err != nil {
		return err
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(respBody, out); err != nil {
		return fmt.Errorf("%w: client: undecodable response from %s: %v", autopipe.ErrInternal, path, err)
	}
	return nil
}

// roundTrip sends the request, retrying transport errors and retryable
// statuses with capped, full-jitter exponential backoff (a server-sent
// Retry-After wins when larger). Non-2xx responses decode into a typed
// *Error; a response that fails to decode becomes an ErrInternal-wrapped
// error carrying the status. The circuit breaker is consulted once per call:
// while open, the call fails fast without touching the wire.
func (c *Client) roundTrip(ctx context.Context, method, path string, body []byte) ([]byte, int, error) {
	if err := c.breakerAllow(); err != nil {
		return nil, 0, err
	}
	var lastErr error
	for attempt := 0; ; attempt++ {
		data, status, retryAfter, err := c.once(ctx, method, path, body)
		switch {
		case err == nil:
			c.breakerRecord(nil)
			return data, status, nil
		case !retryable(err) || attempt >= c.retries:
			c.breakerRecord(err)
			return nil, status, err
		}
		lastErr = err
		d := c.backoffFor(attempt, retryAfter)
		if err := c.sleep(ctx, d); err != nil {
			c.breakerRecord(lastErr)
			return nil, 0, fmt.Errorf("client: retry canceled after %v: %w", lastErr, err)
		}
	}
}

// backoffFor computes the sleep before retrying attempt: full jitter over
// min(base<<attempt, cap), overridden by a larger server Retry-After (which
// is itself subject to the cap). The jitter multiplies the exponential term
// only — a daemon that names a recovery time gets exactly that.
func (c *Client) backoffFor(attempt int, retryAfter time.Duration) time.Duration {
	d := c.backoff << attempt
	if d > c.maxBackoff || d <= 0 { // <= 0: the shift overflowed
		d = c.maxBackoff
	}
	d = time.Duration(c.jitter() * float64(d))
	if retryAfter > d {
		d = retryAfter
		if d > c.maxBackoff {
			d = c.maxBackoff
		}
	}
	return d
}

// breakerAllow reports whether the circuit breaker admits a call right now.
func (c *Client) breakerAllow() error {
	if c.brThreshold <= 0 {
		return nil
	}
	c.brMu.Lock()
	defer c.brMu.Unlock()
	if c.now().Before(c.brOpenUntil) {
		return fmt.Errorf("client: failing fast until %s: %w: %w",
			c.brOpenUntil.Format(time.RFC3339), ErrCircuitOpen, ErrUnavailable)
	}
	return nil
}

// breakerRecord feeds a finished call's outcome to the breaker. Only
// unavailable-class failures count — a typed rejection or a 429 from a
// healthy, rate-limiting daemon proves the daemon is alive. The failure
// count is deliberately not reset when the breaker opens: the first probe
// call after the cooldown reopens it on failure, closes it on success.
func (c *Client) breakerRecord(err error) {
	if c.brThreshold <= 0 {
		return
	}
	failure := err != nil && errors.Is(err, ErrUnavailable) && !errors.Is(err, ErrRateLimited)
	c.brMu.Lock()
	defer c.brMu.Unlock()
	if !failure {
		c.brFails = 0
		c.brOpenUntil = time.Time{}
		return
	}
	c.brFails++
	if c.brFails >= c.brThreshold {
		c.brOpenUntil = c.now().Add(c.brCooldown)
	}
}

func (c *Client) once(ctx context.Context, method, path string, body []byte) ([]byte, int, time.Duration, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return nil, 0, 0, fmt.Errorf("%w: client: build request: %v", autopipe.ErrBadConfig, err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	// Propagate the caller's remaining budget so the daemon can stop work
	// (and yield its search worker) the moment this caller would give up.
	if deadline, ok := ctx.Deadline(); ok {
		if ms := time.Until(deadline).Milliseconds(); ms > 0 {
			req.Header.Set(DeadlineHeader, strconv.FormatInt(ms, 10))
		}
	} else if c.hc.Timeout > 0 {
		req.Header.Set(DeadlineHeader, strconv.FormatInt(c.hc.Timeout.Milliseconds(), 10))
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		// Transport errors (refused connection, reset, client timeout) are
		// retryable by classification below.
		return nil, 0, 0, fmt.Errorf("client: %s %s: %w: %v", method, path, ErrUnavailable, err)
	}
	defer resp.Body.Close()
	retryAfter := parseRetryAfter(resp.Header.Get("Retry-After"))
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, resp.StatusCode, retryAfter, fmt.Errorf("client: read response: %w: %v", ErrUnavailable, err)
	}
	if resp.StatusCode >= 200 && resp.StatusCode < 300 {
		return data, resp.StatusCode, 0, nil
	}
	return nil, resp.StatusCode, retryAfter, decodeError(data, resp.StatusCode)
}

// parseRetryAfter reads the delay-seconds form of a Retry-After header (the
// only form the daemon emits; HTTP-date values from foreign proxies are
// ignored rather than guessed at).
func parseRetryAfter(v string) time.Duration {
	if v == "" {
		return 0
	}
	secs, err := strconv.Atoi(strings.TrimSpace(v))
	if err != nil || secs <= 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// decodeError turns a non-2xx body into a typed error. The daemon always
// sends {"error": {code, message}}; anything else (a proxy's HTML 502, a
// truncated body) maps onto unavailable for 5xx and internal otherwise.
func decodeError(data []byte, status int) error {
	var doc struct {
		Error *Error `json:"error"`
	}
	if err := json.Unmarshal(data, &doc); err == nil && doc.Error != nil && doc.Error.Code != "" {
		return doc.Error
	}
	if status >= 500 {
		return fmt.Errorf("client: HTTP %d: %w", status, ErrUnavailable)
	}
	return fmt.Errorf("%w: client: HTTP %d: %s", autopipe.ErrInternal, status, truncate(data, 200))
}

// retryable reports whether the failed attempt is worth repeating: transient
// daemon conditions (unavailable, rate-limited) only. Typed rejections (bad
// config, infeasible, OOM) and terminal failures are final on the first
// response.
func retryable(err error) bool {
	var we *Error
	if errors.As(err, &we) {
		return we.Code == CodeUnavailable || we.Code == CodeRateLimited
	}
	return errors.Is(err, ErrUnavailable) || errors.Is(err, ErrRateLimited)
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

func truncate(b []byte, n int) string {
	if len(b) <= n {
		return string(b)
	}
	return string(b[:n]) + "..."
}
