// Package client is the public Go API of the autopiped planning service: the
// wire contract (job kinds, request/response documents, typed wire errors)
// and an HTTP client with retry, backoff, and timeout options mirroring the
// Planner's functional-option style.
//
// The wire error model round-trips the repository's typed sentinels: the
// daemon maps each errdefs sentinel to a stable error code and HTTP status
// (ErrBadConfig → 400, ErrInfeasible and ErrOOM → 422), and a decoded
// *client.Error unwraps back to the same sentinel, so
//
//	_, _, err := c.Plan(ctx, model, run, cluster)
//	errors.Is(err, autopipe.ErrInfeasible)
//
// works identically whether the planner ran in-process or behind the daemon.
package client

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"autopipe"
)

// Job kinds accepted by POST /v1/jobs.
const (
	// KindPlan runs the full cluster plan: depth choice, balanced
	// partitioning, and micro-batch slicing on the parallel engine.
	KindPlan = "plan"
	// KindSimulate runs the analytic 1F1B simulator on a stage profile.
	KindSimulate = "simulate"
	// KindSlice solves Algorithm 2 on a stage profile.
	KindSlice = "slice"
)

// PlanPayload is the request body of a plan job. Everything that determines
// the resulting Spec is in here — it is exactly the content hashed into the
// job's cache key.
type PlanPayload struct {
	// Model, Run, and Cluster are the same configuration triple
	// Planner.Plan takes.
	Model   autopipe.Model   `json:"model"`
	Run     autopipe.Run     `json:"run"`
	Cluster autopipe.Cluster `json:"cluster"`
	// Budget caps the number of candidate partitions the search may
	// simulate (0 = unlimited). Unlike parallelism it changes which plan a
	// truncated search returns, so it is part of the cache key.
	Budget int `json:"budget,omitempty"`
}

// SubmitRequest is the body of POST /v1/jobs: a kind plus the payload for
// that kind.
type SubmitRequest struct {
	Kind string `json:"kind"`
	// Plan carries the payload of a KindPlan job.
	Plan *PlanPayload `json:"plan,omitempty"`
	// Profile carries the payload of a KindSimulate or KindSlice job.
	Profile *autopipe.StageProfile `json:"profile,omitempty"`
}

// Validate reports the first problem with the request: an unknown kind, a
// missing/mismatched payload, or a semantically invalid configuration (the
// same checks the Planner runs up front). Errors wrap autopipe.ErrBadConfig
// so the daemon maps them to HTTP 400 — an invalid request is rejected at
// submit, before it occupies a queue slot or an engine search.
func (r *SubmitRequest) Validate() error {
	switch r.Kind {
	case KindPlan:
		if r.Plan == nil {
			return fmt.Errorf("%w: submit: kind %q needs a plan payload", autopipe.ErrBadConfig, r.Kind)
		}
		if r.Profile != nil {
			return fmt.Errorf("%w: submit: kind %q does not take a profile payload", autopipe.ErrBadConfig, r.Kind)
		}
		if err := r.Plan.Model.Validate(); err != nil {
			return err
		}
		if err := r.Plan.Run.Validate(); err != nil {
			return err
		}
		if r.Plan.Budget < 0 {
			return fmt.Errorf("%w: submit: search budget must be non-negative, got %d", autopipe.ErrBadConfig, r.Plan.Budget)
		}
	case KindSimulate, KindSlice:
		if r.Profile == nil {
			return fmt.Errorf("%w: submit: kind %q needs a profile payload", autopipe.ErrBadConfig, r.Kind)
		}
		if r.Plan != nil {
			return fmt.Errorf("%w: submit: kind %q does not take a plan payload", autopipe.ErrBadConfig, r.Kind)
		}
		if err := r.Profile.Validate(); err != nil {
			return err
		}
	default:
		return fmt.Errorf("%w: submit: unknown kind %q (want %s, %s, or %s)",
			autopipe.ErrBadConfig, r.Kind, KindPlan, KindSimulate, KindSlice)
	}
	return nil
}

// PlanResult is the result document of a finished plan job.
type PlanResult struct {
	// Spec is the complete pipeline plan. The block array is not shipped:
	// it is deterministic from (model, run, cluster) via autopipe.Build.
	Spec *autopipe.Spec `json:"spec"`
}

// SimulateResult is the result document of a simulate job: the analytic
// simulator's scalar outputs (the per-op timeline stays server-side).
type SimulateResult struct {
	// IterTime is the simulated iteration makespan in seconds.
	IterTime float64 `json:"iterTime"`
	// Startup is the pipeline startup overhead in seconds.
	Startup float64 `json:"startup"`
	// Master is the master stage the critical path passes through.
	Master int `json:"master"`
}

// SliceResult is the result document of a slice job.
type SliceResult struct {
	// Plan is the Algorithm 2 decision.
	Plan autopipe.SlicePlan `json:"plan"`
}

// Job states. A job is terminal when its state is StateDone or StateFailed.
const (
	StatePending = "pending"
	StateRunning = "running"
	StateDone    = "done"
	StateFailed  = "failed"
)

// Job is the wire view of a submitted job, returned by POST /v1/jobs and
// GET /v1/jobs/{id}.
type Job struct {
	// ID is the daemon-assigned job identifier.
	ID string `json:"id"`
	// Kind is the job kind (plan, simulate, slice).
	Kind string `json:"kind"`
	// State is the lifecycle state (pending, running, done, failed).
	State string `json:"state"`
	// Key is the content address of the request — the cache key. Two jobs
	// with equal keys share one engine search.
	Key string `json:"key,omitempty"`
	// CacheHit reports that the result was served from the plan cache
	// without running the engine.
	CacheHit bool `json:"cacheHit,omitempty"`
	// Shared reports that the job's search was coalesced with an identical
	// in-flight search via singleflight (it waited; it did not search).
	Shared bool `json:"shared,omitempty"`
	// Result holds the kind-specific result document when State is done.
	// Decode it into PlanResult, SimulateResult, or SliceResult by Kind.
	Result json.RawMessage `json:"result,omitempty"`
	// Error holds the typed failure when State is failed.
	Error *Error `json:"error,omitempty"`
}

// Terminal reports whether the job has finished (successfully or not).
func (j *Job) Terminal() bool { return j.State == StateDone || j.State == StateFailed }

// Err returns the job's failure as a Go error (nil unless State is failed).
// The returned error unwraps to the original sentinel, so errors.Is works.
func (j *Job) Err() error {
	if j.State != StateFailed {
		return nil
	}
	if j.Error == nil {
		return fmt.Errorf("%w: job %s failed with no error document", autopipe.ErrInternal, j.ID)
	}
	return j.Error
}

// Error codes carried on the wire. Each code corresponds to exactly one
// sentinel (or context error), so the mapping is invertible.
const (
	CodeBadConfig  = "bad_config"
	CodeInfeasible = "infeasible"
	CodeOOM        = "oom"
	CodeInternal   = "internal"
	CodeCanceled   = "canceled"
	CodeDeadline   = "deadline_exceeded"
	CodeNotFound   = "not_found"
	// CodeUnavailable marks a transient daemon condition — a full job queue
	// or a draining shutdown. The client retries it (with backoff and any
	// server-supplied Retry-After).
	CodeUnavailable = "unavailable"
	// CodeRateLimited marks a request shed by the daemon's admission
	// control (token-bucket rate limiter). Retryable, like unavailable, but
	// distinct: a rate-limited daemon is healthy, so the client's circuit
	// breaker must not count it as a failure.
	CodeRateLimited = "rate_limited"
)

// DeadlineHeader carries the client's remaining per-call budget, in integer
// milliseconds, on POST /v1/jobs. The daemon derives the engine context's
// deadline from it, so a caller that has already given up stops burning
// search workers server-side. The client stamps it automatically from the
// request context's deadline (or, absent one, its per-attempt HTTP timeout).
const DeadlineHeader = "X-Autopipe-Deadline-Ms"

// Error is the wire form of a typed failure. It implements error, and
// Unwrap returns the sentinel its code names, so errors.Is(err,
// autopipe.ErrBadConfig) is true on the client exactly when it was true on
// the daemon.
type Error struct {
	// Code is one of the Code* constants.
	Code string `json:"code"`
	// Message is the daemon-side error text (already includes the sentinel's
	// own message, since daemon errors wrap their sentinel).
	Message string `json:"message"`
}

// Error implements the error interface.
func (e *Error) Error() string {
	if e.Message != "" {
		return e.Message
	}
	return "autopiped: " + e.Code
}

// Unwrap maps the wire code back to its sentinel (or context error), making
// the decoded error errors.Is-compatible with in-process planner errors.
// Unknown codes unwrap to autopipe.ErrInternal: an unrecognized failure from
// the daemon is a contract bug, not user input.
func (e *Error) Unwrap() error {
	switch e.Code {
	case CodeBadConfig:
		return autopipe.ErrBadConfig
	case CodeInfeasible:
		return autopipe.ErrInfeasible
	case CodeOOM:
		return autopipe.ErrOOM
	case CodeCanceled:
		return context.Canceled
	case CodeDeadline:
		return context.DeadlineExceeded
	case CodeNotFound:
		return ErrNotFound
	case CodeUnavailable:
		return ErrUnavailable
	case CodeRateLimited:
		return ErrRateLimited
	default:
		return autopipe.ErrInternal
	}
}

// Client-side sentinels for conditions that have no in-process analogue.
var (
	// ErrNotFound reports a job ID the daemon does not know.
	ErrNotFound = errors.New("job not found")
	// ErrUnavailable reports a transiently overloaded or draining daemon
	// (full queue, shutdown). Safe to retry; the Client does so.
	ErrUnavailable = errors.New("service unavailable")
	// ErrRateLimited reports a request shed by the daemon's token-bucket
	// admission control. Safe to retry after the Retry-After the daemon
	// sends; unlike ErrUnavailable it does not indicate an unhealthy daemon.
	ErrRateLimited = errors.New("rate limited")
	// ErrCircuitOpen reports a call rejected locally by the client's circuit
	// breaker: enough consecutive calls failed with unavailable-class errors
	// that the client is failing fast instead of queueing more retries
	// against a dead daemon. Errors carrying it also match ErrUnavailable.
	ErrCircuitOpen = errors.New("circuit breaker open")
)

// Encode classifies err into its wire form and HTTP status. The mapping is
// the serving half of the round-trip contract:
//
//	ErrBadConfig → 400  bad_config        ErrInfeasible → 422  infeasible
//	ErrOOM       → 422  oom               ErrNotFound   → 404  not_found
//	ErrRateLimited → 429 rate_limited     ErrUnavailable → 503 unavailable
//	context.Canceled → 499 canceled       context.DeadlineExceeded → 504
//	anything else → 500  internal
func Encode(err error) (*Error, int) {
	var code string
	var status int
	switch {
	case errors.Is(err, autopipe.ErrBadConfig):
		code, status = CodeBadConfig, http.StatusBadRequest
	case errors.Is(err, autopipe.ErrInfeasible):
		code, status = CodeInfeasible, http.StatusUnprocessableEntity
	case errors.Is(err, autopipe.ErrOOM):
		code, status = CodeOOM, http.StatusUnprocessableEntity
	case errors.Is(err, ErrNotFound):
		code, status = CodeNotFound, http.StatusNotFound
	case errors.Is(err, ErrRateLimited):
		code, status = CodeRateLimited, http.StatusTooManyRequests
	case errors.Is(err, ErrUnavailable):
		code, status = CodeUnavailable, http.StatusServiceUnavailable
	case errors.Is(err, context.Canceled):
		code, status = CodeCanceled, 499 // client closed request (nginx convention)
	case errors.Is(err, context.DeadlineExceeded):
		code, status = CodeDeadline, http.StatusGatewayTimeout
	default:
		code, status = CodeInternal, http.StatusInternalServerError
	}
	return &Error{Code: code, Message: err.Error()}, status
}
