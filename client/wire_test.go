package client

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"testing"

	"autopipe"
)

// TestEncodeStatusContract pins the sentinel → (code, status) mapping — the
// serving half of the wire-error contract.
func TestEncodeStatusContract(t *testing.T) {
	cases := []struct {
		name       string
		err        error
		wantCode   string
		wantStatus int
	}{
		{"bad config", fmt.Errorf("%w: bad mbs", autopipe.ErrBadConfig), CodeBadConfig, http.StatusBadRequest},
		{"infeasible", fmt.Errorf("%w: no depth fits", autopipe.ErrInfeasible), CodeInfeasible, http.StatusUnprocessableEntity},
		{"oom", fmt.Errorf("%w: stage 2", autopipe.ErrOOM), CodeOOM, http.StatusUnprocessableEntity},
		{"not found", fmt.Errorf("job %q: %w", "job-1", ErrNotFound), CodeNotFound, http.StatusNotFound},
		{"unavailable", fmt.Errorf("queue full: %w", ErrUnavailable), CodeUnavailable, http.StatusServiceUnavailable},
		{"rate limited", fmt.Errorf("admission: %w", ErrRateLimited), CodeRateLimited, http.StatusTooManyRequests},
		{"canceled", fmt.Errorf("wait: %w", context.Canceled), CodeCanceled, 499},
		{"deadline", fmt.Errorf("search: %w", context.DeadlineExceeded), CodeDeadline, http.StatusGatewayTimeout},
		{"internal", errors.New("unclassified"), CodeInternal, http.StatusInternalServerError},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			we, status := Encode(tc.err)
			if we.Code != tc.wantCode {
				t.Errorf("Encode(%v) code = %q, want %q", tc.err, we.Code, tc.wantCode)
			}
			if status != tc.wantStatus {
				t.Errorf("Encode(%v) status = %d, want %d", tc.err, status, tc.wantStatus)
			}
			if we.Message == "" {
				t.Errorf("Encode(%v) lost the message", tc.err)
			}
		})
	}
}

// TestErrorRoundTrip proves Encode → JSON → decode → errors.Is recovers the
// original sentinel for every mapped error — the whole point of typed wire
// errors.
func TestErrorRoundTrip(t *testing.T) {
	sentinels := []error{
		autopipe.ErrBadConfig,
		autopipe.ErrInfeasible,
		autopipe.ErrOOM,
		ErrNotFound,
		ErrUnavailable,
		ErrRateLimited,
		context.Canceled,
		context.DeadlineExceeded,
	}
	for _, sentinel := range sentinels {
		wrapped := fmt.Errorf("daemon-side detail: %w", sentinel)
		we, _ := Encode(wrapped)
		data, err := json.Marshal(we)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		var decoded Error
		if err := json.Unmarshal(data, &decoded); err != nil {
			t.Fatalf("unmarshal: %v", err)
		}
		if !errors.Is(&decoded, sentinel) {
			t.Errorf("round-tripped %v does not match its sentinel %v", &decoded, sentinel)
		}
		// The round trip must not over-match: a decoded infeasible is not a
		// bad config and vice versa.
		for _, other := range sentinels {
			if other != sentinel && errors.Is(&decoded, other) {
				t.Errorf("round-tripped %v wrongly matches %v", sentinel, other)
			}
		}
	}

	// Unknown codes degrade to internal, never to a user-input error.
	unknown := &Error{Code: "mystery", Message: "??"}
	if !errors.Is(unknown, autopipe.ErrInternal) {
		t.Errorf("unknown code does not unwrap to ErrInternal")
	}
	if errors.Is(unknown, autopipe.ErrBadConfig) {
		t.Errorf("unknown code wrongly matches ErrBadConfig")
	}
}

// TestSubmitRequestValidate pins the request-shape validation.
func TestSubmitRequestValidate(t *testing.T) {
	prof := &autopipe.StageProfile{Fwd: []float64{1}, Bwd: []float64{2}, Micro: 4}
	payload := &PlanPayload{Model: autopipe.GPT2_345M(), Run: autopipe.Run{MicroBatch: 4, GlobalBatch: 64}, Cluster: autopipe.DefaultCluster()}
	cases := []struct {
		name string
		req  SubmitRequest
		ok   bool
	}{
		{"plan", SubmitRequest{Kind: KindPlan, Plan: payload}, true},
		{"simulate", SubmitRequest{Kind: KindSimulate, Profile: prof}, true},
		{"slice", SubmitRequest{Kind: KindSlice, Profile: prof}, true},
		{"plan missing payload", SubmitRequest{Kind: KindPlan}, false},
		{"plan with profile", SubmitRequest{Kind: KindPlan, Plan: payload, Profile: prof}, false},
		{"simulate missing profile", SubmitRequest{Kind: KindSimulate}, false},
		{"simulate with plan", SubmitRequest{Kind: KindSimulate, Profile: prof, Plan: payload}, false},
		{"unknown kind", SubmitRequest{Kind: "transmogrify"}, false},
		{"empty kind", SubmitRequest{}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.req.Validate()
			if tc.ok && err != nil {
				t.Errorf("Validate = %v, want nil", err)
			}
			if !tc.ok {
				if !errors.Is(err, autopipe.ErrBadConfig) {
					t.Errorf("Validate = %v, want ErrBadConfig", err)
				}
			}
		})
	}
}

// TestJobErr pins Job.Err: nil unless failed, typed when failed.
func TestJobErr(t *testing.T) {
	if err := (&Job{State: StateDone}).Err(); err != nil {
		t.Errorf("done job Err = %v", err)
	}
	failed := &Job{State: StateFailed, Error: &Error{Code: CodeInfeasible, Message: "no depth fits"}}
	if err := failed.Err(); !errors.Is(err, autopipe.ErrInfeasible) {
		t.Errorf("failed job Err = %v, want ErrInfeasible", err)
	}
	// A failed job with no error document is a daemon bug: internal.
	if err := (&Job{State: StateFailed}).Err(); !errors.Is(err, autopipe.ErrInternal) {
		t.Errorf("failed job without error doc Err = %v, want ErrInternal", err)
	}
}
