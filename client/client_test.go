package client

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"autopipe"
)

// flakyHandler fails the first n requests with the given status (and a typed
// envelope when code is non-empty), then serves a done job document.
func flakyHandler(t *testing.T, failures int, status int, code string) (http.Handler, *atomic.Int64) {
	t.Helper()
	var attempts atomic.Int64
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := attempts.Add(1)
		if int(n) <= failures {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(status)
			if code != "" {
				_ = json.NewEncoder(w).Encode(map[string]any{
					"error": &Error{Code: code, Message: "flaky: " + code},
				})
			}
			return
		}
		_ = json.NewEncoder(w).Encode(&Job{
			ID: "job-00000001", Kind: KindSimulate, State: StateDone,
			Result: json.RawMessage(`{"iterTime": 1.5, "startup": 0.25, "master": 0}`),
		})
	})
	return h, &attempts
}

// testClient builds a client against h whose retry sleeps are recorded
// instead of slept.
func testClient(t *testing.T, h http.Handler, opts ...Option) (*Client, *[]time.Duration, *httptest.Server) {
	t.Helper()
	hs := httptest.NewServer(h)
	t.Cleanup(hs.Close)
	c, err := New(hs.URL, opts...)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	var sleeps []time.Duration
	c.sleep = func(_ context.Context, d time.Duration) error {
		sleeps = append(sleeps, d)
		return nil
	}
	// Pin the full jitter at its supremum so the recorded sleeps equal the
	// exact exponential schedule (jitter semantics get their own test).
	c.jitter = func() float64 { return 1 }
	return c, &sleeps, hs
}

func simReq() SubmitRequest {
	return SubmitRequest{Kind: KindSimulate, Profile: &autopipe.StageProfile{Fwd: []float64{1, 1}, Bwd: []float64{2, 2}, Comm: 0.1, Micro: 8}}
}

// TestRetryOn503 proves the client retries unavailable responses with
// exponential backoff and succeeds once the daemon recovers.
func TestRetryOn503(t *testing.T) {
	h, attempts := flakyHandler(t, 2, http.StatusServiceUnavailable, CodeUnavailable)
	c, sleeps, _ := testClient(t, h, WithRetries(3), WithBackoff(10*time.Millisecond))

	res, err := c.Simulate(context.Background(), *simReq().Profile)
	if err != nil {
		t.Fatalf("Simulate after flaky 503s: %v", err)
	}
	if res.IterTime != 1.5 || res.Master != 0 {
		t.Errorf("result = %+v, want the recovered document", res)
	}
	if got := attempts.Load(); got != 3 {
		t.Errorf("made %d attempts, want 3 (2 failures + 1 success)", got)
	}
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond}
	if len(*sleeps) != len(want) {
		t.Fatalf("slept %v, want %v", *sleeps, want)
	}
	for i := range want {
		if (*sleeps)[i] != want[i] {
			t.Errorf("backoff %d = %v, want %v (exponential from the base)", i, (*sleeps)[i], want[i])
		}
	}
}

// TestRetryExhaustion proves a daemon that never recovers surfaces the typed
// unavailable error after the configured attempts.
func TestRetryExhaustion(t *testing.T) {
	h, attempts := flakyHandler(t, 1000, http.StatusServiceUnavailable, CodeUnavailable)
	c, sleeps, _ := testClient(t, h, WithRetries(2), WithBackoff(time.Millisecond))

	_, err := c.Simulate(context.Background(), *simReq().Profile)
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("err = %v, want ErrUnavailable", err)
	}
	if got := attempts.Load(); got != 3 {
		t.Errorf("made %d attempts, want 3 (1 + 2 retries)", got)
	}
	if len(*sleeps) != 2 {
		t.Errorf("slept %d times, want 2", len(*sleeps))
	}
}

// TestNoRetryOnTypedRejection proves 4xx/422 typed rejections are final:
// retrying a bad config cannot make it good.
func TestNoRetryOnTypedRejection(t *testing.T) {
	cases := []struct {
		code     string
		status   int
		sentinel error
	}{
		{CodeBadConfig, http.StatusBadRequest, autopipe.ErrBadConfig},
		{CodeInfeasible, http.StatusUnprocessableEntity, autopipe.ErrInfeasible},
		{CodeOOM, http.StatusUnprocessableEntity, autopipe.ErrOOM},
		{CodeInternal, http.StatusInternalServerError, autopipe.ErrInternal},
	}
	for _, tc := range cases {
		t.Run(tc.code, func(t *testing.T) {
			h, attempts := flakyHandler(t, 1000, tc.status, tc.code)
			c, sleeps, _ := testClient(t, h, WithRetries(5))
			_, err := c.Simulate(context.Background(), *simReq().Profile)
			if !errors.Is(err, tc.sentinel) {
				t.Fatalf("err = %v, want %v", err, tc.sentinel)
			}
			if got := attempts.Load(); got != 1 {
				t.Errorf("made %d attempts, want 1 (typed rejections are final)", got)
			}
			if len(*sleeps) != 0 {
				t.Errorf("slept %v on a final rejection", *sleeps)
			}
		})
	}
}

// TestRetryOnUntypedProxy5xx proves a bare 5xx (an HTML-spewing proxy, a
// truncated body) is treated as unavailable and retried.
func TestRetryOnUntypedProxy5xx(t *testing.T) {
	var attempts atomic.Int64
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if attempts.Add(1) == 1 {
			w.WriteHeader(http.StatusBadGateway)
			fmt.Fprintln(w, "<html>upstream sad</html>")
			return
		}
		_ = json.NewEncoder(w).Encode(&Job{ID: "job-00000001", Kind: KindSlice, State: StateDone, Result: json.RawMessage(`{"plan":{}}`)})
	})
	c, _, _ := testClient(t, h, WithRetries(2), WithBackoff(time.Millisecond))
	if _, err := c.Slice(context.Background(), *simReq().Profile); err != nil {
		t.Fatalf("Slice through flaky proxy: %v", err)
	}
	if got := attempts.Load(); got != 2 {
		t.Errorf("made %d attempts, want 2", got)
	}
}

// TestRetrySleepHonorsContext proves a canceled context cuts the retry loop.
func TestRetrySleepHonorsContext(t *testing.T) {
	h, _ := flakyHandler(t, 1000, http.StatusServiceUnavailable, CodeUnavailable)
	hs := httptest.NewServer(h)
	t.Cleanup(hs.Close)
	c, err := New(hs.URL, WithRetries(10), WithBackoff(time.Millisecond))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	c.sleep = func(ctx context.Context, _ time.Duration) error {
		cancel()
		return ctx.Err()
	}
	_, err = c.Simulate(ctx, *simReq().Profile)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestTransportErrorRetries proves refused connections are retryable: the
// client survives a daemon that comes up after its first attempt.
func TestTransportErrorRetries(t *testing.T) {
	// Point at a closed port: every attempt is a transport error.
	hs := httptest.NewServer(http.NotFoundHandler())
	hs.Close()
	c, err := New(hs.URL, WithRetries(2), WithBackoff(time.Millisecond))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	var sleeps atomic.Int64
	c.sleep = func(context.Context, time.Duration) error {
		sleeps.Add(1)
		return nil
	}
	_, err = c.Simulate(context.Background(), *simReq().Profile)
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("err = %v, want ErrUnavailable", err)
	}
	if got := sleeps.Load(); got != 2 {
		t.Errorf("retried %d times, want 2", got)
	}
}

// TestBackoffJitterAndCap proves the retry schedule is full-jitter over the
// exponential term with a hard ceiling: sleep k is jitter() * min(base<<k,
// cap), so a fleet of retrying clients spreads out instead of thundering.
func TestBackoffJitterAndCap(t *testing.T) {
	h, _ := flakyHandler(t, 1000, http.StatusServiceUnavailable, CodeUnavailable)
	c, sleeps, _ := testClient(t, h, WithRetries(4),
		WithBackoff(time.Second), WithMaxBackoff(2*time.Second))
	c.jitter = func() float64 { return 0.5 }

	_, err := c.Simulate(context.Background(), *simReq().Profile)
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("err = %v, want ErrUnavailable", err)
	}
	// base<<k = 1s, 2s, 4s, 8s → capped to 1s, 2s, 2s, 2s → halved by jitter.
	want := []time.Duration{500 * time.Millisecond, time.Second, time.Second, time.Second}
	if len(*sleeps) != len(want) {
		t.Fatalf("slept %v, want %v", *sleeps, want)
	}
	for i := range want {
		if (*sleeps)[i] != want[i] {
			t.Errorf("sleep %d = %v, want %v", i, (*sleeps)[i], want[i])
		}
	}
}

// TestRetryAfterHonored proves a server-sent Retry-After wins over the
// computed backoff when larger — and is still subject to the cap.
func TestRetryAfterHonored(t *testing.T) {
	var attempts atomic.Int64
	mk := func(retryAfter string) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if attempts.Add(1) == 1 {
				w.Header().Set("Retry-After", retryAfter)
				w.Header().Set("Content-Type", "application/json")
				w.WriteHeader(http.StatusServiceUnavailable)
				_ = json.NewEncoder(w).Encode(map[string]any{
					"error": &Error{Code: CodeUnavailable, Message: "recovering"},
				})
				return
			}
			_ = json.NewEncoder(w).Encode(&Job{
				ID: "job-00000001", Kind: KindSimulate, State: StateDone,
				Result: json.RawMessage(`{"iterTime": 1.5, "startup": 0.25, "master": 0}`),
			})
		})
	}

	// Header (3s) beats the 10ms computed backoff.
	c, sleeps, _ := testClient(t, mk("3"), WithRetries(2), WithBackoff(10*time.Millisecond))
	if _, err := c.Simulate(context.Background(), *simReq().Profile); err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	if len(*sleeps) != 1 || (*sleeps)[0] != 3*time.Second {
		t.Errorf("sleeps = %v, want [3s] (Retry-After wins over backoff)", *sleeps)
	}

	// A huge header is clamped to the max backoff.
	attempts.Store(0)
	c2, sleeps2, _ := testClient(t, mk("120"), WithRetries(2),
		WithBackoff(10*time.Millisecond), WithMaxBackoff(2*time.Second))
	if _, err := c2.Simulate(context.Background(), *simReq().Profile); err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	if len(*sleeps2) != 1 || (*sleeps2)[0] != 2*time.Second {
		t.Errorf("sleeps = %v, want [2s] (Retry-After capped)", *sleeps2)
	}

	// An unparsable header falls back to the computed backoff.
	attempts.Store(0)
	c3, sleeps3, _ := testClient(t, mk("Thu, 01 Jan 2026 00:00:00 GMT"),
		WithRetries(2), WithBackoff(10*time.Millisecond))
	if _, err := c3.Simulate(context.Background(), *simReq().Profile); err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	if len(*sleeps3) != 1 || (*sleeps3)[0] != 10*time.Millisecond {
		t.Errorf("sleeps = %v, want [10ms] (date form ignored)", *sleeps3)
	}
}

// TestCircuitBreaker proves the failure-rate breaker: consecutive
// unavailable-class call failures open it, open calls fail fast without
// touching the wire, and the post-cooldown probe closes it on success.
func TestCircuitBreaker(t *testing.T) {
	healthy := atomic.Bool{}
	var attempts atomic.Int64
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts.Add(1)
		if !healthy.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		_ = json.NewEncoder(w).Encode(&Job{
			ID: "job-00000001", Kind: KindSimulate, State: StateDone,
			Result: json.RawMessage(`{"iterTime": 1.5, "startup": 0.25, "master": 0}`),
		})
	})
	c, _, _ := testClient(t, h, WithRetries(0), WithCircuitBreaker(2, time.Second))
	clock := time.Unix(1000, 0)
	c.now = func() time.Time { return clock }

	// Two consecutive failures trip the breaker.
	for i := 0; i < 2; i++ {
		if _, err := c.Simulate(context.Background(), *simReq().Profile); !errors.Is(err, ErrUnavailable) {
			t.Fatalf("call %d: err = %v, want ErrUnavailable", i, err)
		}
	}
	if got := attempts.Load(); got != 2 {
		t.Fatalf("made %d attempts, want 2", got)
	}

	// Open: fail fast, no wire traffic, typed as both circuit-open and
	// unavailable.
	_, err := c.Simulate(context.Background(), *simReq().Profile)
	if !errors.Is(err, ErrCircuitOpen) || !errors.Is(err, ErrUnavailable) {
		t.Fatalf("open-breaker err = %v, want ErrCircuitOpen and ErrUnavailable", err)
	}
	if got := attempts.Load(); got != 2 {
		t.Errorf("open breaker still hit the wire (%d attempts)", got)
	}

	// After the cooldown the probe goes through; the daemon recovered, so
	// the breaker closes and stays closed.
	clock = clock.Add(2 * time.Second)
	healthy.Store(true)
	for i := 0; i < 2; i++ {
		if _, err := c.Simulate(context.Background(), *simReq().Profile); err != nil {
			t.Fatalf("post-recovery call %d: %v", i, err)
		}
	}
	if got := attempts.Load(); got != 4 {
		t.Errorf("made %d attempts, want 4 (probe + one more)", got)
	}
}

// TestCircuitBreakerReopensOnFailedProbe proves a failed probe reopens the
// breaker immediately (the failure count is not reset by opening).
func TestCircuitBreakerReopensOnFailedProbe(t *testing.T) {
	h, attempts := flakyHandler(t, 1000, http.StatusServiceUnavailable, CodeUnavailable)
	c, _, _ := testClient(t, h, WithRetries(0), WithCircuitBreaker(2, time.Second))
	clock := time.Unix(1000, 0)
	c.now = func() time.Time { return clock }

	for i := 0; i < 2; i++ {
		_, _ = c.Simulate(context.Background(), *simReq().Profile)
	}
	clock = clock.Add(2 * time.Second) // cooldown over: next call is the probe
	if _, err := c.Simulate(context.Background(), *simReq().Profile); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("probe err = %v, want ErrUnavailable", err)
	}
	if got := attempts.Load(); got != 3 {
		t.Fatalf("made %d attempts, want 3", got)
	}
	// The failed probe reopened the breaker: fail fast again.
	if _, err := c.Simulate(context.Background(), *simReq().Profile); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("post-probe err = %v, want ErrCircuitOpen", err)
	}
	if got := attempts.Load(); got != 3 {
		t.Errorf("reopened breaker still hit the wire (%d attempts)", got)
	}
}

// TestRateLimitedRetriesButSkipsBreaker proves a 429 is retried (the daemon
// asked us to slow down, not go away) yet never counts toward the breaker —
// a rate-limiting daemon is a healthy daemon.
func TestRateLimitedRetriesButSkipsBreaker(t *testing.T) {
	h, attempts := flakyHandler(t, 2, http.StatusTooManyRequests, CodeRateLimited)
	c, sleeps, _ := testClient(t, h, WithRetries(3),
		WithBackoff(10*time.Millisecond), WithCircuitBreaker(1, time.Minute))

	res, err := c.Simulate(context.Background(), *simReq().Profile)
	if err != nil {
		t.Fatalf("Simulate after 429s: %v", err)
	}
	if res.IterTime != 1.5 {
		t.Errorf("result = %+v, want the recovered document", res)
	}
	if got := attempts.Load(); got != 3 {
		t.Errorf("made %d attempts, want 3", got)
	}
	if len(*sleeps) != 2 {
		t.Errorf("slept %d times, want 2", len(*sleeps))
	}

	// Exhausting retries on 429 surfaces the typed sentinel without ever
	// opening the breaker (threshold is 1 here).
	h2, _ := flakyHandler(t, 1000, http.StatusTooManyRequests, CodeRateLimited)
	c2, _, _ := testClient(t, h2, WithRetries(1), WithCircuitBreaker(1, time.Minute))
	if _, err := c2.Simulate(context.Background(), *simReq().Profile); !errors.Is(err, ErrRateLimited) {
		t.Fatalf("err = %v, want ErrRateLimited", err)
	}
	if _, err := c2.Simulate(context.Background(), *simReq().Profile); errors.Is(err, ErrCircuitOpen) {
		t.Errorf("429s opened the breaker: %v", err)
	}
}

// TestDeadlineHeaderStamped proves every request carries the caller's
// remaining budget: from the context deadline when one is set, else from the
// per-attempt HTTP timeout.
func TestDeadlineHeaderStamped(t *testing.T) {
	var header atomic.Value
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		header.Store(r.Header.Get(DeadlineHeader))
		_ = json.NewEncoder(w).Encode(&Job{
			ID: "job-00000001", Kind: KindSimulate, State: StateDone,
			Result: json.RawMessage(`{"iterTime": 1.5, "startup": 0.25, "master": 0}`),
		})
	})
	c, _, _ := testClient(t, h, WithTimeout(30*time.Second))

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := c.Simulate(ctx, *simReq().Profile); err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	ms, err := strconv.Atoi(header.Load().(string))
	if err != nil || ms <= 0 || ms > 10_000 {
		t.Errorf("deadline header = %q, want ~10000ms from the context deadline", header.Load())
	}

	if _, err := c.Simulate(context.Background(), *simReq().Profile); err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	ms, err = strconv.Atoi(header.Load().(string))
	if err != nil || ms != 30_000 {
		t.Errorf("deadline header = %q, want 30000ms from the HTTP timeout", header.Load())
	}
}

// TestNewValidation pins the constructor's URL checks.
func TestNewValidation(t *testing.T) {
	for _, bad := range []string{"", "not a url at all\x7f", "127.0.0.1:8080", "/relative"} {
		if _, err := New(bad); !errors.Is(err, autopipe.ErrBadConfig) {
			t.Errorf("New(%q) = %v, want ErrBadConfig", bad, err)
		}
	}
	c, err := New("http://127.0.0.1:7180/")
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if c.base != "http://127.0.0.1:7180" {
		t.Errorf("base = %q, want trailing slash trimmed", c.base)
	}
}

// TestClientValidatesBeforeSending proves a structurally bad request never
// reaches the wire.
func TestClientValidatesBeforeSending(t *testing.T) {
	var attempts atomic.Int64
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) { attempts.Add(1) })
	c, _, _ := testClient(t, h)
	if _, err := c.Submit(context.Background(), SubmitRequest{Kind: "transmogrify"}); !errors.Is(err, autopipe.ErrBadConfig) {
		t.Fatalf("err = %v, want ErrBadConfig", err)
	}
	if attempts.Load() != 0 {
		t.Errorf("invalid request reached the daemon")
	}
}
